// Concurrency stress suite: hammers the lock-guarded subsystems from
// many threads at once. These tests exist to give TSan races to find —
// run them under -DDAVIX_SANITIZE=thread (see docs/CONCURRENCY.md) —
// but they also assert functional invariants (no torn reads, correct
// bytes, clean shutdown) so they catch logic races in plain builds too.

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/block_cache.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/dav_posix.h"
#include "core/http_client.h"
#include "core/read_ahead_stream.h"
#include "core/replica_set.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"
#include "muxhttp/mux.h"
#include "test_util.h"
#include "xrootd/xrd_server.h"

#include "gtest/gtest.h"

namespace davix {
namespace core {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

// ------------------------------------------------------- BlockCache

/// Deterministic payload of block `b` of url `u`: verifiable from any
/// thread without shared state.
std::string BlockPayload(int u, int b, uint64_t block_bytes) {
  return std::string(block_bytes, static_cast<char>('A' + (u * 7 + b) % 26));
}

TEST(ConcurrencyStressTest, BlockCacheEvictionRacesFillsUnder16Threads) {
  constexpr uint64_t kBlock = 4096;
  constexpr int kUrls = 4;
  constexpr int kBlocksPerUrl = 32;
  BlockCacheConfig config;
  config.block_bytes = kBlock;
  // A quarter of the working set fits: fills continuously evict under
  // pressure.
  config.capacity_bytes = kUrls * kBlocksPerUrl * kBlock / 4;
  config.shards = 4;
  BlockCache cache(config);

  BlockValidator validator;
  validator.etag = "\"gen-1\"";
  auto key = [](int u) { return "http://node" + std::to_string(u) + ":80/f"; };

  constexpr int kThreads = 16;
  std::atomic<uint64_t> verified_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int iter = 0; iter < 400; ++iter) {
        int u = static_cast<int>(rng.Below(kUrls));
        int b = static_cast<int>(rng.Below(kBlocksPerUrl));
        uint64_t offset = static_cast<uint64_t>(b) * kBlock;
        // Rare whole-URL purge racing everyone else's fills — rare so
        // residency still builds up enough for the LRU budget to evict.
        if (rng.Below(64) == 0) {
          cache.PurgeUrl(key(u));
          continue;
        }
        switch (rng.Below(8)) {
          case 0:
          case 1:
          case 2:
          case 3: {
            std::string out;
            if (cache.TryReadFull(key(u), offset, kBlock, &out)) {
              // A hit must never deliver torn or foreign bytes.
              ASSERT_EQ(out, BlockPayload(u, b, kBlock));
              verified_hits.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          default:
            cache.Insert(key(u), validator, offset,
                         BlockPayload(u, b, kBlock));
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  BlockCacheCounters stats = cache.Snapshot();
  EXPECT_LE(stats.resident_bytes, config.capacity_bytes);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(verified_hits.load(), 0u);
}

// ------------------------------------------------------- ReplicaSet

TEST(ConcurrencyStressTest, ReplicaSetHealthMutationDuringStripedStream) {
  constexpr char kPath[] = "/stress/data.bin";
  Rng rng(42);
  std::string content = rng.Bytes(512 * 1024);
  std::vector<TestStorageServer> replicas;
  auto catalog = std::make_shared<fed::ReplicaCatalog>();
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(StartStorageServer());
    replicas.back().store->Put(kPath, content);
    catalog->AddReplica(kPath, replicas.back().UrlFor(kPath), i + 1);
  }
  auto federation = std::make_shared<fed::FederationHandler>(catalog);
  auto fed_router = std::make_shared<httpd::Router>();
  federation->Register(fed_router.get(), "/");
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<httpd::HttpServer> fed_server,
                       httpd::HttpServer::Start({}, fed_router));

  Context context;
  RequestParams params;
  params.metalink_resolver = fed_server->BaseUrl();
  params.max_retries = 0;
  params.multistream_chunk_bytes = 32 * 1024;
  params.multistream_max_streams = 3;
  ASSERT_OK_AND_ASSIGN(
      std::shared_ptr<ReplicaSet> set,
      ReplicaSet::Resolve(&context,
                          *Uri::Parse(replicas[0].UrlFor(kPath)), params));

  // Background threads mutate source health and re-rank while the
  // stream is striping chunks across those same sources. Quarantined
  // sources stay in the candidate walk (healthy-first), so the stream
  // must still deliver every byte.
  std::atomic<bool> done{false};
  std::vector<std::thread> mutators;
  for (int t = 0; t < 4; ++t) {
    mutators.emplace_back([&, t] {
      Rng mutator_rng(7 + t);
      while (!done.load(std::memory_order_relaxed)) {
        auto ranked = set->RankedSources();
        for (auto& source : ranked) {
          if (mutator_rng.Below(2) == 0) {
            source->RecordFailure(1'000'000, 2, 50'000);
          } else {
            source->RecordSuccess(
                static_cast<int64_t>(mutator_rng.Below(5'000)) + 1);
          }
          (void)source->Quarantined(1'000'000);
          (void)source->latency_ewma_micros();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }

  std::string assembled;
  uint64_t expected_offset = 0;
  Status status = set->Stream(0, content.size(), params,
                              [&](uint64_t offset, std::string_view data) {
                                EXPECT_EQ(offset, expected_offset);
                                expected_offset = offset + data.size();
                                assembled.append(data);
                                return Status::OK();
                              });
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : mutators) t.join();
  ASSERT_OK(status);
  EXPECT_EQ(assembled, content);
}

// --------------------------------------------------- ReadAheadStream

TEST(ConcurrencyStressTest, ReadAheadStreamCloseVsDeliveryHammering) {
  Rng rng(5);
  const std::string content = rng.Bytes(256 * 1024);
  ThreadPool pool(4);
  constexpr uint64_t kChunk = 8 * 1024;

  for (int iter = 0; iter < 60; ++iter) {
    auto fetch = [&content, iter](uint64_t offset,
                                  uint64_t length) -> Result<std::string> {
      // Spread completions so destruction regularly lands mid-fetch.
      std::this_thread::sleep_for(
          std::chrono::microseconds(100 + (iter * 37 + offset / 991) % 400));
      if (offset >= content.size()) return std::string();
      return content.substr(offset, length);
    };
    ReadAheadStreamConfig config;
    config.chunk_bytes = kChunk;
    config.window_chunks = 6;
    config.file_size = content.size();
    ReadAheadStream stream(fetch, &pool, config);

    // Consume a prefix — enough to fill the window with in-flight
    // fetches — then tear the stream down while they are on the wire.
    uint64_t position = 0;
    int reads = 1 + iter % 3;
    for (int r = 0; r < reads; ++r) {
      ASSERT_OK_AND_ASSIGN(std::string data, stream.Read(position, kChunk));
      ASSERT_EQ(data, content.substr(position, data.size()));
      position += data.size();
    }
    if (iter % 2 == 0) stream.Invalidate();
    // Destructor races the still-running deliveries.
  }
}

// ------------------------------------------- server Stop() regression

// Regression for a shutdown race: concurrent Stop() callers could both
// join() the accept thread (UB), and the loser could return while
// connection threads were still running. Stop() now serialises callers;
// each must return only after teardown completed.
TEST(ConcurrencyStressTest, HttpServerConcurrentStopIsSafe) {
  for (int iter = 0; iter < 8; ++iter) {
    TestStorageServer bundle = StartStorageServer();
    bundle.store->Put("/f", std::string(1024, 'x'));
    // Park a few live keep-alive connections for Stop() to unblock.
    std::vector<net::TcpSocket> clients;
    for (int i = 0; i < 4; ++i) {
      auto address =
          net::SocketAddress::Resolve("127.0.0.1", bundle.server->port());
      ASSERT_TRUE(address.ok());
      auto socket = net::TcpSocket::Connect(*address);
      ASSERT_TRUE(socket.ok());
      clients.push_back(std::move(*socket));
    }
    httpd::HttpServer* server = bundle.server.get();
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 8; ++i) {
      stoppers.emplace_back([server] { server->Stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    // Every Stop() returned => all connection threads are joined; the
    // destructor's Stop() must also be a clean no-op.
    bundle.server.reset();
  }
}

// The reactor rewrite moved teardown onto a drain path; hammer the whole
// start/park/stop cycle enough times that any latent join/wakeup race
// between the reactor thread, the worker pool and concurrent Stop()
// callers gets a chance to misfire (and for TSan to observe it).
TEST(ConcurrencyStressTest, HttpServerStopHammering) {
  for (int iter = 0; iter < 60; ++iter) {
    httpd::ServerConfig config;
    config.worker_threads = 2;
    TestStorageServer bundle = StartStorageServer(config);
    bundle.store->Put("/f", "x");
    // Half the iterations park a raw connection mid-handshake so drain
    // has a kReading connection to reap; the rest stop an idle server.
    std::optional<net::TcpSocket> parked;
    if (iter % 2 == 0) {
      auto address =
          net::SocketAddress::Resolve("127.0.0.1", bundle.server->port());
      ASSERT_TRUE(address.ok());
      auto socket = net::TcpSocket::Connect(*address);
      ASSERT_TRUE(socket.ok());
      (void)socket->WriteAll("GET /f HT");  // header forever incomplete
      parked.emplace(std::move(*socket));
    }
    httpd::HttpServer* server = bundle.server.get();
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([server] { server->Stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    bundle.server.reset();
  }
}

// Drain must win cleanly against a barrage of brand-new connections:
// whatever the accept queue holds when Stop() lands is either served or
// refused, never wedged, and Stop() still returns promptly.
TEST(ConcurrencyStressTest, HttpServerDrainRacesNewAccepts) {
  for (int iter = 0; iter < 6; ++iter) {
    TestStorageServer bundle = StartStorageServer();
    bundle.store->Put("/f", std::string(2048, 'y'));
    uint16_t port = bundle.server->port();

    std::atomic<bool> done{false};
    std::vector<std::thread> connectors;
    for (int t = 0; t < 4; ++t) {
      connectors.emplace_back([&, t] {
        while (!done.load(std::memory_order_relaxed)) {
          auto address = net::SocketAddress::Resolve("127.0.0.1", port);
          if (!address.ok()) break;
          auto socket = net::TcpSocket::Connect(*address);
          if (!socket.ok()) break;  // listener already closed: expected
          // Refused/reset mid-exchange is fine; a hang is not.
          (void)socket->WriteAll("GET /f HTTP/1.1\r\nHost: x\r\n\r\n");
          socket->ShutdownWrite();
          std::string response;
          net::BufferedReader reader(&*socket, 1'000'000);
          (void)reader.ReadToEof(&response);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10 + 5 * iter));
    bundle.server->Stop();
    done.store(true, std::memory_order_relaxed);
    for (std::thread& t : connectors) t.join();
    bundle.server.reset();
  }
}

TEST(ConcurrencyStressTest, MuxServerConcurrentStopIsSafe) {
  for (int iter = 0; iter < 8; ++iter) {
    auto store = std::make_shared<httpd::ObjectStore>();
    store->Put("/x", std::string(20'000, 'x'));
    auto handler = std::make_shared<httpd::DavHandler>(store);
    auto router = std::make_shared<httpd::Router>();
    handler->Register(router.get(), "/");
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<muxhttp::MuxServer> server,
                         muxhttp::MuxServer::Start({}, router));
    // Exchanges in flight through the mux transport while 8 threads
    // race Stop(): requests either complete or fail cleanly.
    Context context;
    RequestParams params;
    params.transport = TransportKind::kMux;
    params.max_retries = 0;
    params.operation_timeout_micros = 2'000'000;
    HttpClient client(&context);
    Uri url = *Uri::Parse(server->BaseUrl() + "/x");
    std::vector<std::thread> requesters;
    for (int i = 0; i < 4; ++i) {
      requesters.emplace_back([&client, url, &params] {
        for (int j = 0; j < 4; ++j) {
          auto result = client.Execute(url, http::Method::kGet, params);
          if (result.ok()) {
            EXPECT_EQ(result->response.body.size(), 20'000u);
          }
        }
      });
    }
    muxhttp::MuxServer* raw = server.get();
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 8; ++i) {
      stoppers.emplace_back([raw] { raw->Stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    for (std::thread& t : requesters) t.join();
    server.reset();
    context.mux_transport().Clear();
  }
}

TEST(ConcurrencyStressTest, MuxTransportSixteenThreadsOneConnectionFaults) {
  // 16 threads hammer ONE framed connection (per-host cap = 1) with
  // overlapping range-GETs while a FaultInjector kills the connection
  // or 503s streams mid-flight. Every healthy read must come back
  // byte-exact after the client's retries; the transport must keep
  // reconnecting rather than wedge. The interesting failures here are
  // data races and lock-order bugs — this test is a primary target of
  // the TSan / ASan CI legs.
  auto store = std::make_shared<httpd::ObjectStore>();
  Rng rng(1234);
  std::string content = rng.Bytes(512 * 1024);
  store->Put("/obj", content);
  store->Put("/flaky", content);
  auto handler = std::make_shared<httpd::DavHandler>(store);
  auto router = std::make_shared<httpd::Router>();
  handler->Register(router.get(), "/");

  muxhttp::MuxServerConfig config;
  config.data_chunk_bytes = 8 * 1024;  // many DATA frames per response
  config.faults = std::make_shared<netsim::FaultInjector>(77);
  {
    netsim::FaultRule refuse;
    refuse.path_prefix = "/flaky";
    refuse.action = netsim::FaultAction::kRefuseConnection;
    refuse.probability = 0.10;
    refuse.max_hits = 6;
    config.faults->AddRule(refuse);
    netsim::FaultRule truncate;
    truncate.path_prefix = "/flaky";
    truncate.action = netsim::FaultAction::kTruncateBody;
    truncate.probability = 0.10;
    truncate.max_hits = 6;
    config.faults->AddRule(truncate);
    netsim::FaultRule error;
    error.path_prefix = "/flaky";
    error.action = netsim::FaultAction::kServerError;
    error.probability = 0.15;
    error.max_hits = 20;
    config.faults->AddRule(error);
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<muxhttp::MuxServer> server,
                       muxhttp::MuxServer::Start(config, router));

  Context context;
  RequestParams params;
  params.transport = TransportKind::kMux;
  params.metalink_mode = MetalinkMode::kDisabled;
  params.mux_max_connections_per_host = 1;
  params.mux_max_streams_per_connection = 32;
  params.max_retries = 8;
  params.operation_timeout_micros = 10'000'000;
  // One fault kills every in-flight stream at once, so a burst of
  // failures against the single host is by design here; the breaker
  // (covered by its own tests) would turn that burst into fast-fails
  // for the healthy reads we assert on. Out of the way it goes.
  params.breaker_failure_threshold = -1;
  const std::string base = server->BaseUrl();

  std::atomic<int> healthy_failures{0};
  std::atomic<int> wrong_bytes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&, t] {
      DavFile file = *DavFile::Make(&context, base + "/obj");
      DavFile flaky = *DavFile::Make(&context, base + "/flaky");
      Rng thread_rng(uint64_t(t) + 1);
      for (int i = 0; i < 12; ++i) {
        uint64_t offset = thread_rng.Below(content.size() - 4096);
        uint64_t length = 1 + thread_rng.Below(4096);
        if (i % 3 == 2) {
          // Fault-prone exchange: outcome free, crash/wedge forbidden.
          (void)flaky.ReadPartial(offset, length, params);
          continue;
        }
        auto data = file.ReadPartial(offset, length, params);
        if (!data.ok()) {
          healthy_failures.fetch_add(1);
        } else if (*data != content.substr(offset, length)) {
          wrong_bytes.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong_bytes.load(), 0);
  EXPECT_EQ(healthy_failures.load(), 0);
  IoCounters counters = context.SnapshotCounters();
  // The connection cap held even while faults forced reconnects.
  EXPECT_GE(counters.mux_streams_opened, 128u);
  EXPECT_GE(counters.mux_connections_opened, 1u);
  if (config.faults->faults_fired() > 0) {
    EXPECT_GE(counters.mux_connections_lost +
                  counters.mux_streams_reset,
              1u);
  }
  // One more exchange proves the transport is still live afterwards.
  DavFile file = *DavFile::Make(&context, base + "/obj");
  ASSERT_OK_AND_ASSIGN(std::string tail,
                       file.ReadPartial(content.size() - 100, 100, params));
  EXPECT_EQ(tail, content.substr(content.size() - 100, 100));
}

TEST(ConcurrencyStressTest, XrdServerConcurrentStopIsSafe) {
  for (int iter = 0; iter < 8; ++iter) {
    auto store = std::make_shared<httpd::ObjectStore>();
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<xrootd::XrdServer> server,
                         xrootd::XrdServer::Start({}, store));
    xrootd::XrdServer* raw = server.get();
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 8; ++i) {
      stoppers.emplace_back([raw] { raw->Stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    server.reset();
  }
}

// ----------------------------------------------- counters aggregation

// SnapshotCounters aggregates atomics while dispatcher threads bump
// them; under TSan this verifies the accounting really is atomic.
TEST(ConcurrencyStressTest, SnapshotCountersDuringConcurrentReads) {
  TestStorageServer bundle = StartStorageServer();
  Rng rng(11);
  std::string content = rng.Bytes(64 * 1024);
  bundle.store->Put("/f", content);

  Context context;
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_relaxed)) {
      IoCounters counters = context.SnapshotCounters();
      EXPECT_GE(counters.bytes_read, 0u);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  constexpr int kThreads = 8;
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      DavPosix posix(&context);
      auto fd = posix.Open(bundle.UrlFor("/f"));
      ASSERT_TRUE(fd.ok()) << fd.status().ToString();
      auto data = posix.PRead(*fd, 0, content.size());
      ASSERT_TRUE(data.ok()) << data.status().ToString();
      EXPECT_EQ(*data, content);
      EXPECT_OK(posix.Close(*fd));
    });
  }
  for (std::thread& t : readers) t.join();
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();
  EXPECT_GE(context.SnapshotCounters().bytes_read, content.size());
}

}  // namespace
}  // namespace core
}  // namespace davix
