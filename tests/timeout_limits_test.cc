// Deadline and limit behaviour across the stack: operation timeouts on
// stalled servers, connect timeouts, end-to-end deadlines, jittered
// retry backoff, Retry-After pacing, per-host circuit breakers, shaper
// maths properties, and store concurrency — the paths that only show up
// when something is slow or down.

#include <thread>

#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/http_client.h"
#include "core/mux_transport.h"
#include "core/resilience.h"
#include "muxhttp/mux.h"
#include "netsim/shaper.h"
#include "test_util.h"
#include "xrootd/xrd_client.h"
#include "xrootd/xrd_server.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

// ------------------------------------------------------- client deadlines

TEST(TimeoutTest, StalledServerHitsOperationTimeout) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "x");
  netsim::FaultRule stall;
  stall.path_prefix = "/f";
  stall.action = netsim::FaultAction::kStall;
  stall.stall_micros = 2'000'000;
  server.server->faults().AddRule(stall);

  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  params.operation_timeout_micros = 150'000;
  params.max_retries = 0;
  Stopwatch stopwatch;
  Result<core::HttpClient::Exchange> result = client.Execute(
      *Uri::Parse(server.UrlFor("/f")), http::Method::kGet, params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  // The client gave up near its deadline, well before the 2 s stall.
  EXPECT_LT(stopwatch.ElapsedSeconds(), 1.0);
}

TEST(TimeoutTest, ConnectTimeoutOnBlackholedPort) {
  core::Context context;
  core::RequestParams params;
  params.connect_timeout_micros = 100'000;
  // Port 1 on loopback refuses instantly (no blackhole available in a
  // container), so this mostly exercises the error path + context.
  Result<std::unique_ptr<core::Session>> session =
      context.pool().Acquire(*Uri::Parse("http://127.0.0.1:1/"), params);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kConnectionFailed);
}

TEST(TimeoutTest, RetriesRespectBudgetAndDelay) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "x");
  server.server->faults().SetServerDown(true);
  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  params.max_retries = 3;
  params.retry_delay_micros = 10'000;
  Result<core::HttpClient::Exchange> result = client.Execute(
      *Uri::Parse(server.UrlFor("/f")), http::Method::kGet, params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(context.SnapshotCounters().retries, 3u);
}

// ------------------------------------------------- end-to-end resilience

TEST(DeadlineTest, UnarmedCapsNothingArmedCapsEverything) {
  core::Deadline unarmed;
  EXPECT_FALSE(unarmed.armed());
  EXPECT_FALSE(unarmed.Expired());
  EXPECT_EQ(unarmed.CapTimeout(5'000), 5'000);
  EXPECT_EQ(unarmed.CapTimeout(0), 0);  // 0 stays "infinite" when unarmed

  core::Deadline armed = core::Deadline::After(200'000);
  EXPECT_TRUE(armed.armed());
  EXPECT_FALSE(armed.Expired());
  // An "infinite" per-step timeout becomes the remaining budget...
  int64_t capped = armed.CapTimeout(0);
  EXPECT_GT(capped, 0);
  EXPECT_LE(capped, 200'000);
  // ...and a finite one is only ever narrowed.
  EXPECT_LE(armed.CapTimeout(50'000), 50'000);

  // Expired deadlines cap to a 1 µs immediate-but-real timeout, never 0.
  core::Deadline past = core::Deadline::AtMonotonic(MonotonicMicros() - 1);
  EXPECT_TRUE(past.Expired());
  EXPECT_EQ(past.CapTimeout(0), 1);
  EXPECT_EQ(past.RemainingMicros(), 0);

  // Tightened never widens the caller's budget.
  core::Deadline tight = armed.Tightened(10'000);
  EXPECT_LE(tight.absolute_micros(), armed.absolute_micros());
  core::Deadline not_wider = armed.Tightened(10'000'000);
  EXPECT_EQ(not_wider.absolute_micros(), armed.absolute_micros());
}

TEST(BackoffTest, DeterministicSeededJitterWithinEnvelope) {
  core::BackoffConfig config;
  config.base_delay_micros = 10'000;
  config.max_delay_micros = 80'000;
  config.multiplier = 2.0;
  core::Backoff a(config, /*seed=*/99);
  core::Backoff b(config, /*seed=*/99);
  core::Backoff c(config, /*seed=*/100);
  bool any_differs = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    int64_t delay_a = a.NextDelayMicros(attempt);
    int64_t delay_b = b.NextDelayMicros(attempt);
    int64_t delay_c = c.NextDelayMicros(attempt);
    // Same seed, same sequence.
    EXPECT_EQ(delay_a, delay_b) << "attempt " << attempt;
    if (delay_a != delay_c) any_differs = true;
    // Full jitter: within [0, min(cap, base * 2^attempt)].
    int64_t envelope = attempt >= 3 ? 80'000 : 10'000 << attempt;
    EXPECT_GE(delay_a, 0) << "attempt " << attempt;
    EXPECT_LE(delay_a, envelope) << "attempt " << attempt;
  }
  // Different seeds decorrelate (the whole point of the jitter).
  EXPECT_TRUE(any_differs);
}

TEST(CircuitBreakerTest, StateMachineWithExplicitClock) {
  core::CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_micros = 1'000'000;
  core::CircuitBreaker breaker(config);
  int64_t now = 1'000'000'000;

  // Failures below the threshold keep admitting.
  EXPECT_EQ(breaker.Admit(now), core::CircuitBreaker::Decision::kAdmit);
  EXPECT_FALSE(breaker.RecordFailure(now));
  EXPECT_FALSE(breaker.RecordFailure(now));
  EXPECT_EQ(breaker.Admit(now), core::CircuitBreaker::Decision::kAdmit);
  // A success resets the streak...
  breaker.RecordSuccess();
  EXPECT_FALSE(breaker.RecordFailure(now));
  EXPECT_FALSE(breaker.RecordFailure(now));
  // ...so it takes a fresh run of 3 to open.
  EXPECT_TRUE(breaker.RecordFailure(now));
  EXPECT_EQ(breaker.state(now), core::CircuitBreaker::State::kOpen);

  // Open: fast-fail until the cooldown elapses.
  EXPECT_EQ(breaker.Admit(now + 1), core::CircuitBreaker::Decision::kFastFail);
  EXPECT_EQ(breaker.Admit(now + 999'999),
            core::CircuitBreaker::Decision::kFastFail);

  // Half-open: exactly one probe slot.
  now += 1'000'001;
  EXPECT_EQ(breaker.state(now), core::CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.Admit(now), core::CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.Admit(now + 1), core::CircuitBreaker::Decision::kFastFail);

  // A failed probe re-arms the cooldown; a stale probe's slot is handed
  // out again after another cooldown.
  EXPECT_FALSE(breaker.RecordFailure(now + 2));  // reopen, not newly open
  now += 1'000'003;
  EXPECT_EQ(breaker.Admit(now), core::CircuitBreaker::Decision::kProbe);
  now += 1'000'000;  // probe never reported: goes stale
  EXPECT_EQ(breaker.Admit(now), core::CircuitBreaker::Decision::kProbe);
  // A successful probe closes the breaker for good.
  EXPECT_TRUE(breaker.RecordSuccess());
  EXPECT_EQ(breaker.state(now), core::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.Admit(now), core::CircuitBreaker::Decision::kAdmit);
}

TEST(DeadlineTest, DeadlineBoundsRetryLoop) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "x");
  server.server->faults().SetServerDown(true);
  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  // A generous retry budget that the 250 ms total budget must cut short.
  params.max_retries = 50;
  params.retry_delay_micros = 50'000;
  params.total_timeout_micros = 250'000;
  Stopwatch stopwatch;
  Result<core::HttpClient::Exchange> result = client.Execute(
      *Uri::Parse(server.UrlFor("/f")), http::Method::kGet, params);
  ASSERT_FALSE(result.ok());
  // Almost always the loop-top deadline check fires (kTimeout, counted
  // as a deadline expiration); in the rare race where the budget runs
  // out mid-attempt, the last transport error surfaces instead. Either
  // way the 250 ms budget must cut the 50-retry loop short.
  EXPECT_TRUE(result.status().code() == StatusCode::kTimeout ||
              result.status().IsRetryable())
      << result.status().ToString();
  EXPECT_LT(stopwatch.ElapsedSeconds(), 2.0);
  EXPECT_LT(context.SnapshotCounters().retries, 50u);
}

TEST(RetryAfterTest, HonoredOnIdempotent503) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "payload");
  netsim::FaultRule rule;
  rule.path_prefix = "/f";
  rule.action = netsim::FaultAction::kRetryAfter;
  rule.retry_after_seconds = 1;
  rule.max_hits = 1;  // heal after one 503
  server.server->faults().AddRule(rule);

  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  params.max_retries = 2;
  Stopwatch stopwatch;
  ASSERT_OK_AND_ASSIGN(
      auto exchange, client.Execute(*Uri::Parse(server.UrlFor("/f")),
                                    http::Method::kGet, params));
  EXPECT_EQ(exchange.response.status_code, 200);
  EXPECT_EQ(exchange.response.body, "payload");
  // The client actually paced itself on the server's hint.
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.9);
  EXPECT_EQ(context.SnapshotCounters().retry_after_honored, 1u);
}

TEST(RetryAfterTest, WaitLongerThanDeadlineReturnsThe503) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "payload");
  netsim::FaultRule rule;
  rule.path_prefix = "/f";
  rule.action = netsim::FaultAction::kRetryAfter;
  rule.retry_after_seconds = 30;
  server.server->faults().AddRule(rule);

  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  params.max_retries = 2;
  params.total_timeout_micros = 300'000;  // 30 s wait >> 0.3 s budget
  Stopwatch stopwatch;
  ASSERT_OK_AND_ASSIGN(
      auto exchange, client.Execute(*Uri::Parse(server.UrlFor("/f")),
                                    http::Method::kGet, params));
  // Sleeping would blow the deadline, so the 503 goes to the caller now.
  EXPECT_EQ(exchange.response.status_code, 503);
  EXPECT_LT(stopwatch.ElapsedSeconds(), 1.0);
  EXPECT_EQ(context.SnapshotCounters().retry_after_honored, 0u);
}

TEST(CircuitBreakerTest, FastFailsWhileOpenAndRecoversViaProbe) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "back");
  server.server->faults().SetServerDown(true);
  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  params.max_retries = 0;
  params.breaker_failure_threshold = 2;
  params.breaker_cooldown_micros = 200'000;
  Uri uri = *Uri::Parse(server.UrlFor("/f"));

  // Two real failures open the breaker...
  EXPECT_FALSE(client.Execute(uri, http::Method::kGet, params).ok());
  EXPECT_FALSE(client.Execute(uri, http::Method::kGet, params).ok());
  // ...after which the acquire fast-fails without touching the network.
  Stopwatch stopwatch;
  Result<core::HttpClient::Exchange> shed =
      client.Execute(uri, http::Method::kGet, params);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kConnectionFailed);
  EXPECT_NE(shed.status().ToString().find("circuit breaker"),
            std::string::npos);
  EXPECT_LT(stopwatch.ElapsedSeconds(), 0.1);
  IoCounters mid = context.SnapshotCounters();
  EXPECT_EQ(mid.breaker_opens, 1u);
  EXPECT_GE(mid.breaker_fast_fails, 1u);
  EXPECT_EQ(mid.breaker_closes, 0u);

  // Server recovers; once the cooldown elapses the half-open probe is
  // admitted, succeeds, and closes the breaker.
  server.server->faults().SetServerDown(false);
  SleepForMicros(250'000);
  ASSERT_OK_AND_ASSIGN(auto exchange,
                       client.Execute(uri, http::Method::kGet, params));
  EXPECT_EQ(exchange.response.status_code, 200);
  EXPECT_EQ(exchange.response.body, "back");
  IoCounters io = context.SnapshotCounters();
  EXPECT_GE(io.breaker_half_open_probes, 1u);
  EXPECT_EQ(io.breaker_closes, 1u);
}

TEST(StallWatchdogTest, SlowLorisBodyAbortsByThroughputFloor) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", std::string(16 * 1024, 'z'));
  netsim::FaultRule rule;
  rule.path_prefix = "/f";
  rule.action = netsim::FaultAction::kSlowBody;
  rule.body_bytes_per_sec = 2048;  // ~8 s for the body at this trickle
  server.server->faults().AddRule(rule);

  core::Context context;
  core::DavFile file = *core::DavFile::Make(&context, server.UrlFor("/f"));
  core::RequestParams params;
  params.max_retries = 0;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  params.min_throughput_bytes_per_sec = 64 * 1024;  // budget ~0.45 s
  Stopwatch stopwatch;
  Result<std::vector<std::string>> result =
      file.ReadPartialVec({{0, 16 * 1024}}, params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  // Aborted by the watchdog budget, nowhere near the 8 s trickle.
  EXPECT_LT(stopwatch.ElapsedSeconds(), 3.0);
  EXPECT_GE(context.SnapshotCounters().stall_aborts, 1u);
}

TEST(TimeoutTest, XrdClientTimesOutOnStalledServer) {
  auto store = std::make_shared<httpd::ObjectStore>();
  store->Put("/f", "data");
  auto server = xrootd::XrdServer::Start({}, store);
  ASSERT_TRUE(server.ok());
  xrootd::XrdClientConfig config;
  config.operation_timeout_micros = 150'000;
  auto client =
      xrootd::XrdClient::Connect("127.0.0.1", (*server)->port(), config);
  ASSERT_TRUE(client.ok());
  ASSERT_OK((*client)->Login());
  // Take the server down *between* requests: the next request gets no
  // response and must fail by deadline instead of hanging.
  (*server)->faults().SetServerDown(true);
  Stopwatch stopwatch;
  Result<xrootd::OpenInfo> open = (*client)->Open("/f");
  EXPECT_FALSE(open.ok());
  EXPECT_LT(stopwatch.ElapsedSeconds(), 2.0);
}

TEST(TimeoutTest, MuxConnectionToDeadPortFailsWithinBudget) {
  core::RequestParams params;
  params.connect_timeout_micros = 500'000;
  Stopwatch stopwatch;
  Result<std::shared_ptr<core::MuxConnection>> connection =
      core::MuxConnection::Connect(*Uri::Parse("http://127.0.0.1:1/"),
                                   params);
  EXPECT_FALSE(connection.ok());
  EXPECT_LT(stopwatch.ElapsedSeconds(), 2.0);
}

// ------------------------------------------------------ shaper properties

class ShaperPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShaperPropertyTest, TransferMonotoneAndWindowBounded) {
  Rng rng(GetParam());
  netsim::LinkProfile profile;
  profile.rtt_micros = 1000 + static_cast<int64_t>(rng.Below(200'000));
  profile.bandwidth_bytes_per_sec =
      1'000'000 + static_cast<int64_t>(rng.Below(200'000'000));
  profile.init_cwnd_bytes = 1460 * (1 + static_cast<int64_t>(rng.Below(20)));
  profile.max_cwnd_bytes =
      profile.init_cwnd_bytes * (1 + static_cast<int64_t>(rng.Below(64)));

  int64_t prev_time = 0;
  int64_t cwnd = profile.init_cwnd_bytes;
  for (int64_t bytes : {0, 100, 10'000, 1'000'000, 4'000'000}) {
    int64_t fresh_cwnd = profile.init_cwnd_bytes;
    int64_t t = netsim::ConnectionShaper::TransferMicros(profile, bytes,
                                                         &fresh_cwnd);
    // Monotone in size.
    EXPECT_GE(t, prev_time);
    prev_time = t;
    // Window never exceeds the cap and never shrinks.
    EXPECT_LE(fresh_cwnd, profile.max_cwnd_bytes);
    EXPECT_GE(fresh_cwnd, profile.init_cwnd_bytes);
  }

  // Warm transfers never take longer than cold ones of the same size.
  int64_t cold_cwnd = profile.init_cwnd_bytes;
  int64_t cold = netsim::ConnectionShaper::TransferMicros(profile, 2'000'000,
                                                          &cold_cwnd);
  int64_t warm = netsim::ConnectionShaper::TransferMicros(profile, 2'000'000,
                                                          &cold_cwnd);
  EXPECT_LE(warm, cold);
  (void)cwnd;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShaperPropertyTest,
                         ::testing::Range<uint64_t>(1, 33));

// ------------------------------------------------------- store concurrency

TEST(ObjectStoreConcurrencyTest, ParallelMixedOperations) {
  httpd::ObjectStore store;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 50; ++i) {
        std::string path = "/d/f" + std::to_string(rng.Below(20));
        switch (rng.Below(4)) {
          case 0:
            store.Put(path, rng.Bytes(100));
            break;
          case 1:
            (void)store.Get(path);
            break;
          case 2:
            (void)store.Stat(path);
            break;
          default:
            (void)store.Delete(path);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Store is still coherent.
  store.Put("/final", "ok");
  ASSERT_OK_AND_ASSIGN(auto object, store.Get("/final"));
  EXPECT_EQ(object->data, "ok");
}

// --------------------------------------------------- pool under churn

TEST(PoolChurnTest, ServerRestartsBetweenBursts) {
  // Simulates a flapping server: bursts of requests with the server
  // going down and up between them; the context keeps working.
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "flap");
  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  params.max_retries = 0;
  Uri uri = *Uri::Parse(server.UrlFor("/f"));

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_OK_AND_ASSIGN(auto exchange,
                           client.Execute(uri, http::Method::kGet, params));
      EXPECT_EQ(exchange.response.status_code, 200);
    }
    server.server->faults().SetServerDown(true);
    EXPECT_FALSE(client.Execute(uri, http::Method::kGet, params).ok());
    server.server->faults().SetServerDown(false);
  }
}

}  // namespace
}  // namespace davix
