// Deadline and limit behaviour across the stack: operation timeouts on
// stalled servers, connect timeouts, shaper maths properties, and store
// concurrency — the paths that only show up when something is slow.

#include <thread>

#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/http_client.h"
#include "muxhttp/mux.h"
#include "netsim/shaper.h"
#include "test_util.h"
#include "xrootd/xrd_client.h"
#include "xrootd/xrd_server.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

// ------------------------------------------------------- client deadlines

TEST(TimeoutTest, StalledServerHitsOperationTimeout) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "x");
  netsim::FaultRule stall;
  stall.path_prefix = "/f";
  stall.action = netsim::FaultAction::kStall;
  stall.stall_micros = 2'000'000;
  server.server->faults().AddRule(stall);

  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  params.operation_timeout_micros = 150'000;
  params.max_retries = 0;
  Stopwatch stopwatch;
  Result<core::HttpClient::Exchange> result = client.Execute(
      *Uri::Parse(server.UrlFor("/f")), http::Method::kGet, params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  // The client gave up near its deadline, well before the 2 s stall.
  EXPECT_LT(stopwatch.ElapsedSeconds(), 1.0);
}

TEST(TimeoutTest, ConnectTimeoutOnBlackholedPort) {
  core::Context context;
  core::RequestParams params;
  params.connect_timeout_micros = 100'000;
  // Port 1 on loopback refuses instantly (no blackhole available in a
  // container), so this mostly exercises the error path + context.
  Result<std::unique_ptr<core::Session>> session =
      context.pool().Acquire(*Uri::Parse("http://127.0.0.1:1/"), params);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kConnectionFailed);
}

TEST(TimeoutTest, RetriesRespectBudgetAndDelay) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "x");
  server.server->faults().SetServerDown(true);
  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  params.max_retries = 3;
  params.retry_delay_micros = 10'000;
  Result<core::HttpClient::Exchange> result = client.Execute(
      *Uri::Parse(server.UrlFor("/f")), http::Method::kGet, params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(context.SnapshotCounters().retries, 3u);
}

TEST(TimeoutTest, XrdClientTimesOutOnStalledServer) {
  auto store = std::make_shared<httpd::ObjectStore>();
  store->Put("/f", "data");
  auto server = xrootd::XrdServer::Start({}, store);
  ASSERT_TRUE(server.ok());
  xrootd::XrdClientConfig config;
  config.operation_timeout_micros = 150'000;
  auto client =
      xrootd::XrdClient::Connect("127.0.0.1", (*server)->port(), config);
  ASSERT_TRUE(client.ok());
  ASSERT_OK((*client)->Login());
  // Take the server down *between* requests: the next request gets no
  // response and must fail by deadline instead of hanging.
  (*server)->faults().SetServerDown(true);
  Stopwatch stopwatch;
  Result<xrootd::OpenInfo> open = (*client)->Open("/f");
  EXPECT_FALSE(open.ok());
  EXPECT_LT(stopwatch.ElapsedSeconds(), 2.0);
}

TEST(TimeoutTest, MuxClientConnectToDeadPortFails) {
  Result<std::unique_ptr<muxhttp::MuxClient>> client =
      muxhttp::MuxClient::Connect("127.0.0.1", 1);
  EXPECT_FALSE(client.ok());
}

// ------------------------------------------------------ shaper properties

class ShaperPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShaperPropertyTest, TransferMonotoneAndWindowBounded) {
  Rng rng(GetParam());
  netsim::LinkProfile profile;
  profile.rtt_micros = 1000 + static_cast<int64_t>(rng.Below(200'000));
  profile.bandwidth_bytes_per_sec =
      1'000'000 + static_cast<int64_t>(rng.Below(200'000'000));
  profile.init_cwnd_bytes = 1460 * (1 + static_cast<int64_t>(rng.Below(20)));
  profile.max_cwnd_bytes =
      profile.init_cwnd_bytes * (1 + static_cast<int64_t>(rng.Below(64)));

  int64_t prev_time = 0;
  int64_t cwnd = profile.init_cwnd_bytes;
  for (int64_t bytes : {0, 100, 10'000, 1'000'000, 4'000'000}) {
    int64_t fresh_cwnd = profile.init_cwnd_bytes;
    int64_t t = netsim::ConnectionShaper::TransferMicros(profile, bytes,
                                                         &fresh_cwnd);
    // Monotone in size.
    EXPECT_GE(t, prev_time);
    prev_time = t;
    // Window never exceeds the cap and never shrinks.
    EXPECT_LE(fresh_cwnd, profile.max_cwnd_bytes);
    EXPECT_GE(fresh_cwnd, profile.init_cwnd_bytes);
  }

  // Warm transfers never take longer than cold ones of the same size.
  int64_t cold_cwnd = profile.init_cwnd_bytes;
  int64_t cold = netsim::ConnectionShaper::TransferMicros(profile, 2'000'000,
                                                          &cold_cwnd);
  int64_t warm = netsim::ConnectionShaper::TransferMicros(profile, 2'000'000,
                                                          &cold_cwnd);
  EXPECT_LE(warm, cold);
  (void)cwnd;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShaperPropertyTest,
                         ::testing::Range<uint64_t>(1, 33));

// ------------------------------------------------------- store concurrency

TEST(ObjectStoreConcurrencyTest, ParallelMixedOperations) {
  httpd::ObjectStore store;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 50; ++i) {
        std::string path = "/d/f" + std::to_string(rng.Below(20));
        switch (rng.Below(4)) {
          case 0:
            store.Put(path, rng.Bytes(100));
            break;
          case 1:
            (void)store.Get(path);
            break;
          case 2:
            (void)store.Stat(path);
            break;
          default:
            (void)store.Delete(path);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Store is still coherent.
  store.Put("/final", "ok");
  ASSERT_OK_AND_ASSIGN(auto object, store.Get("/final"));
  EXPECT_EQ(object->data, "ok");
}

// --------------------------------------------------- pool under churn

TEST(PoolChurnTest, ServerRestartsBetweenBursts) {
  // Simulates a flapping server: bursts of requests with the server
  // going down and up between them; the context keeps working.
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "flap");
  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  params.max_retries = 0;
  Uri uri = *Uri::Parse(server.UrlFor("/f"));

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_OK_AND_ASSIGN(auto exchange,
                           client.Execute(uri, http::Method::kGet, params));
      EXPECT_EQ(exchange.response.status_code, 200);
    }
    server.server->faults().SetServerDown(true);
    EXPECT_FALSE(client.Execute(uri, http::Method::kGet, params).ok());
    server.server->faults().SetServerDown(false);
  }
}

}  // namespace
}  // namespace davix
