#include <algorithm>
#include <atomic>
#include <thread>

#include "common/rng.h"
#include "core/context.h"
#include "core/dav_posix.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace core {
namespace {

using ::davix::testing::TestStorageServer;

class DavPosixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = testing::StartStorageServer();
    Rng rng(7);
    content_ = rng.Bytes(100'000);
    server_.store->Put("/f.bin", content_);
    context_ = std::make_unique<Context>();
    posix_ = std::make_unique<DavPosix>(context_.get());
    params_.metalink_mode = MetalinkMode::kDisabled;
  }

  TestStorageServer server_;
  std::string content_;
  std::unique_ptr<Context> context_;
  std::unique_ptr<DavPosix> posix_;
  RequestParams params_;
};

TEST_F(DavPosixTest, OpenReadClose) {
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string first, posix_->Read(fd, 1000));
  EXPECT_EQ(first, content_.substr(0, 1000));
  ASSERT_OK_AND_ASSIGN(std::string second, posix_->Read(fd, 1000));
  EXPECT_EQ(second, content_.substr(1000, 1000));
  ASSERT_OK(posix_->Close(fd));
  EXPECT_FALSE(posix_->Read(fd, 1).ok());  // closed descriptor
  EXPECT_EQ(posix_->OpenCount(), 0u);
}

TEST_F(DavPosixTest, OpenMissingFails) {
  EXPECT_FALSE(posix_->Open(server_.UrlFor("/absent"), params_).ok());
}

TEST_F(DavPosixTest, ReadToEofReturnsShortThenEmpty) {
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(uint64_t pos,
                       posix_->LSeek(fd, -100, 2));  // SEEK_END
  EXPECT_EQ(pos, content_.size() - 100);
  ASSERT_OK_AND_ASSIGN(std::string tail, posix_->Read(fd, 5000));
  EXPECT_EQ(tail, content_.substr(content_.size() - 100));
  ASSERT_OK_AND_ASSIGN(std::string empty, posix_->Read(fd, 100));
  EXPECT_TRUE(empty.empty());
}

TEST_F(DavPosixTest, LSeekModes) {
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(uint64_t set, posix_->LSeek(fd, 500, 0));
  EXPECT_EQ(set, 500u);
  ASSERT_OK_AND_ASSIGN(uint64_t cur, posix_->LSeek(fd, 250, 1));
  EXPECT_EQ(cur, 750u);
  EXPECT_FALSE(posix_->LSeek(fd, -10'000'000, 1).ok());
  EXPECT_FALSE(posix_->LSeek(fd, 0, 9).ok());
}

TEST_F(DavPosixTest, PReadDoesNotMoveCursor) {
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string at, posix_->PRead(fd, 5000, 100));
  EXPECT_EQ(at, content_.substr(5000, 100));
  ASSERT_OK_AND_ASSIGN(std::string sequential, posix_->Read(fd, 10));
  EXPECT_EQ(sequential, content_.substr(0, 10));  // cursor untouched
}

TEST_F(DavPosixTest, PReadPastEofIsEmpty) {
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string data,
                       posix_->PRead(fd, content_.size() + 10, 10));
  EXPECT_TRUE(data.empty());
}

TEST_F(DavPosixTest, PReadVecClampsAtEof) {
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  std::vector<http::ByteRange> ranges = {
      {10, 10},
      {content_.size() - 5, 100},   // clamped to 5
      {content_.size() + 50, 10}};  // fully past EOF
  ASSERT_OK_AND_ASSIGN(auto results, posix_->PReadVec(fd, ranges));
  EXPECT_EQ(results[0], content_.substr(10, 10));
  EXPECT_EQ(results[1], content_.substr(content_.size() - 5));
  EXPECT_TRUE(results[2].empty());
}

TEST_F(DavPosixTest, ReadAheadServesFromBuffer) {
  params_.readahead_bytes = 32 * 1024;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  context_->ResetCounters();
  std::string assembled;
  for (int i = 0; i < 32; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string chunk, posix_->Read(fd, 1024));
    assembled += chunk;
  }
  EXPECT_EQ(assembled, content_.substr(0, 32 * 1024));
  // One read-ahead fetch instead of 32 individual GETs.
  EXPECT_EQ(context_->SnapshotCounters().requests, 1u);
}

TEST_F(DavPosixTest, ReadAheadStraddleServesBufferedPrefix) {
  // A read straddling the end of the synchronous buffer serves the
  // buffered prefix and fetches only the missing suffix: no
  // already-buffered byte crosses the wire twice.
  params_.readahead_bytes = 10'000;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK(posix_->LSeek(fd, 85'000, 0).status());
  context_->ResetCounters();

  // Fills the buffer with [85'000, 95'000).
  ASSERT_OK_AND_ASSIGN(std::string first, posix_->Read(fd, 6'000));
  EXPECT_EQ(first, content_.substr(85'000, 6'000));
  // Straddle: 4'000 buffered + 4'000 missing. The suffix fetch starts at
  // 95'000 and is clamped to the 5'000 bytes left before EOF.
  ASSERT_OK_AND_ASSIGN(std::string second, posix_->Read(fd, 8'000));
  EXPECT_EQ(second, content_.substr(91'000, 8'000));

  IoCounters io = context_->SnapshotCounters();
  EXPECT_EQ(io.requests, 2u);
  // Payload fetched: 10'000 + 5'000. The old refetch-from-cursor path
  // pulled 10'000 + 9'000. Headers ride on top, hence the margin.
  EXPECT_LT(io.bytes_read, 16'000u);
}

TEST_F(DavPosixTest, AsyncReadAheadSequentialDelivery) {
  params_.readahead_bytes = 8192;
  params_.readahead_window_chunks = 4;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  context_->ResetCounters();
  // Read sizes chosen to straddle chunk boundaries in every alignment.
  std::string assembled;
  size_t sizes[] = {3000, 8192, 77, 9000, 1};
  size_t turn = 0;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string chunk,
                         posix_->Read(fd, sizes[turn++ % 5]));
    if (chunk.empty()) break;
    assembled += chunk;
  }
  EXPECT_EQ(assembled, content_);
  // Every chunk fetched exactly once: ceil(100'000 / 8192) requests
  // (the non-aligned EOF tail is its own short chunk).
  EXPECT_EQ(context_->SnapshotCounters().requests, 13u);
  EXPECT_TRUE(context_->dispatcher_started());
}

TEST_F(DavPosixTest, AsyncReadAheadLSeekInvalidatesMidStream) {
  params_.readahead_bytes = 4096;
  params_.readahead_window_chunks = 4;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string a, posix_->Read(fd, 3000));
  EXPECT_EQ(a, content_.substr(0, 3000));

  // Forward seek, far outside the window.
  ASSERT_OK(posix_->LSeek(fd, 60'000, 0).status());
  ASSERT_OK_AND_ASSIGN(std::string b, posix_->Read(fd, 3000));
  EXPECT_EQ(b, content_.substr(60'000, 3000));

  // Backward seek.
  ASSERT_OK(posix_->LSeek(fd, -50'000, 1).status());
  ASSERT_OK_AND_ASSIGN(std::string c, posix_->Read(fd, 3000));
  EXPECT_EQ(c, content_.substr(13'000, 3000));

  // SEEK_END into the short non-aligned tail.
  ASSERT_OK(posix_->LSeek(fd, -100, 2).status());
  ASSERT_OK_AND_ASSIGN(std::string d, posix_->Read(fd, 5000));
  EXPECT_EQ(d, content_.substr(content_.size() - 100));
  ASSERT_OK_AND_ASSIGN(std::string empty, posix_->Read(fd, 100));
  EXPECT_TRUE(empty.empty());
}

TEST_F(DavPosixTest, AsyncReadAheadForwardSeekInsideWindowKeepsPrefetch) {
  params_.readahead_bytes = 4096;
  params_.readahead_window_chunks = 4;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  context_->ResetCounters();
  // Seeds the window: chunks [0, 4*4096) — 4 requests.
  ASSERT_OK_AND_ASSIGN(std::string head, posix_->Read(fd, 100));
  EXPECT_EQ(head, content_.substr(0, 100));
  // Small forward skip, still inside the window: the prefetch stays
  // alive, only the skipped chunk 0 is dropped.
  ASSERT_OK(posix_->LSeek(fd, 4096 + 10, 0).status());
  ASSERT_OK_AND_ASSIGN(std::string after, posix_->Read(fd, 100));
  EXPECT_EQ(after, content_.substr(4096 + 10, 100));
  // 4 seed chunks + at most 1 top-up; an invalidating seek would have
  // re-seeded 4 fresh chunks (7+ requests total).
  EXPECT_LE(context_->SnapshotCounters().requests, 5u);
}

TEST_F(DavPosixTest, AsyncReadAheadMidStreamFaultSurfacesExactlyOnce) {
  // One injected truncation, retries disabled: exactly one Read must
  // fail, the cursor must not move, and the stream must re-seed and
  // deliver identical bytes afterwards.
  params_.readahead_bytes = 4096;
  params_.readahead_window_chunks = 4;
  params_.max_retries = 0;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  // Armed after Open so the Stat HEAD is not the request that trips it.
  server_.server->faults().AddRule(
      {"/f.bin", netsim::FaultAction::kTruncateBody, 1.0, 1, 0});
  std::string assembled;
  int errors = 0;
  while (assembled.size() < content_.size()) {
    Result<std::string> chunk = posix_->Read(fd, 3000);
    if (!chunk.ok()) {
      ++errors;
      ASSERT_LE(errors, 1) << chunk.status().ToString();
      continue;  // cursor unchanged; next Read re-seeds the window
    }
    ASSERT_FALSE(chunk->empty());
    assembled += *chunk;
  }
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(assembled, content_);
  EXPECT_EQ(server_.server->stats().faults_injected.load(), 1u);
}

TEST_F(DavPosixTest, AsyncReadAheadConcurrentReadAndPRead) {
  params_.readahead_bytes = 4096;
  params_.readahead_window_chunks = 3;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  std::atomic<int> failures{0};
  std::thread preader([&] {
    for (int i = 0; i < 40; ++i) {
      uint64_t offset = static_cast<uint64_t>(i) * 2311 % 90'000;
      Result<std::string> data = posix_->PRead(fd, offset, 128);
      if (!data.ok() || *data != content_.substr(offset, 128)) {
        failures.fetch_add(1);
      }
    }
  });
  std::string assembled;
  while (true) {
    Result<std::string> chunk = posix_->Read(fd, 2500);
    if (!chunk.ok()) {
      failures.fetch_add(1);
      break;
    }
    if (chunk->empty()) break;
    assembled += *chunk;
  }
  preader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(assembled, content_);
}

TEST_F(DavPosixTest, AsyncReadAheadCloseWithWindowInFlightIsClean) {
  params_.readahead_bytes = 2048;
  params_.readahead_window_chunks = 8;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  // Prime the window, then close immediately: the in-flight fetches own
  // everything they touch, so this must neither crash nor hang.
  ASSERT_OK_AND_ASSIGN(std::string head, posix_->Read(fd, 100));
  EXPECT_EQ(head, content_.substr(0, 100));
  ASSERT_OK(posix_->Close(fd));
  EXPECT_EQ(posix_->OpenCount(), 0u);
}

TEST_F(DavPosixTest, ReadAheadCorrectAcrossSeeks) {
  params_.readahead_bytes = 16 * 1024;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string a, posix_->Read(fd, 100));
  ASSERT_OK(posix_->LSeek(fd, 50'000, 0).status());
  ASSERT_OK_AND_ASSIGN(std::string b, posix_->Read(fd, 100));
  ASSERT_OK(posix_->LSeek(fd, 10, 0).status());
  ASSERT_OK_AND_ASSIGN(std::string c, posix_->Read(fd, 100));
  EXPECT_EQ(a, content_.substr(0, 100));
  EXPECT_EQ(b, content_.substr(50'000, 100));
  EXPECT_EQ(c, content_.substr(10, 100));
}

TEST_F(DavPosixTest, StatUnlinkMkdirRename) {
  ASSERT_OK_AND_ASSIGN(FileInfo info,
                       posix_->Stat(server_.UrlFor("/f.bin"), params_));
  EXPECT_EQ(info.size, content_.size());

  ASSERT_OK(posix_->MkDir(server_.UrlFor("/newdir"), params_));
  server_.store->Put("/newdir/a", "abc");
  ASSERT_OK(posix_->Rename(server_.UrlFor("/newdir/a"), "/newdir/b", params_));
  EXPECT_TRUE(server_.store->Get("/newdir/b").ok());

  ASSERT_OK(posix_->Unlink(server_.UrlFor("/newdir/b"), params_));
  EXPECT_FALSE(server_.store->Get("/newdir/b").ok());
  EXPECT_FALSE(posix_->Unlink(server_.UrlFor("/newdir/b"), params_).ok());
}

TEST_F(DavPosixTest, ListDirNamesChildren) {
  server_.store->Put("/dir/x", "1");
  server_.store->Put("/dir/y", "2");
  server_.store->Put("/dir/sub/z", "3");
  ASSERT_OK_AND_ASSIGN(auto names,
                       posix_->ListDir(server_.UrlFor("/dir"), params_));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"sub", "x", "y"}));
}

TEST_F(DavPosixTest, ConcurrentPReadsShareDescriptor) {
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        uint64_t offset = static_cast<uint64_t>(t) * 10'000 + i * 97;
        Result<std::string> data = posix_->PRead(fd, offset, 64);
        if (!data.ok() || *data != content_.substr(offset, 64)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace core
}  // namespace davix
