// core::BlockCache: unit coverage of the sharded LRU block store
// (slicing, lookup, eviction, validator invalidation, concurrency) plus
// integration through the real read paths — DavPosix::Read/PRead, the
// asynchronous read-ahead window, and ReadPartialVec — against the
// embedded WebDAV server.

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/block_cache.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/dav_posix.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace core {
namespace {

using ::davix::testing::TestStorageServer;

constexpr uint64_t kBlock = 1024;

BlockCacheConfig SmallCache(uint64_t capacity = 64 * kBlock,
                            size_t shards = 2) {
  BlockCacheConfig config;
  config.capacity_bytes = capacity;
  config.block_bytes = kBlock;
  config.shards = shards;
  return config;
}

BlockValidator V(const std::string& etag) {
  BlockValidator v;
  v.etag = etag;
  return v;
}

std::string Pattern(size_t size, char seed = 0) {
  std::string out(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<char>((i * 31 + seed) & 0xff);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Unit: slicing, lookup, alignment.
// ---------------------------------------------------------------------------

TEST(BlockCacheTest, DisabledCacheNoOps) {
  BlockCache cache(BlockCacheConfig{});  // capacity 0
  EXPECT_FALSE(cache.enabled());
  cache.Insert("k", V("\"e1\""), 0, Pattern(4 * kBlock), 4 * kBlock);
  std::string out;
  EXPECT_FALSE(cache.TryReadFull("k", 0, kBlock, &out));
  std::string buf(kBlock, '\0');
  EXPECT_EQ(cache.ReadPrefix("k", 0, kBlock, buf.data()), 0u);
  BlockCacheCounters counters = cache.Snapshot();
  EXPECT_EQ(counters.insertions, 0u);
  EXPECT_EQ(counters.hits, 0u);
  EXPECT_EQ(counters.misses, 0u);
}

TEST(BlockCacheTest, InsertsOnlyFullyCoveredBlocks) {
  BlockCache cache(SmallCache());
  std::string data = Pattern(3 * kBlock);
  // Span [100, 100 + 3 blocks): covers blocks 1 and 2 fully, 0 and 3
  // partially — only 1 and 2 become cache lines.
  cache.Insert("k", V("\"e1\""), 100, data);
  EXPECT_EQ(cache.Snapshot().insertions, 2u);

  std::string out;
  EXPECT_FALSE(cache.TryReadFull("k", 0, kBlock, &out));
  EXPECT_TRUE(cache.TryReadFull("k", kBlock, 2 * kBlock, &out));
  EXPECT_EQ(out, data.substr(kBlock - 100, 2 * kBlock));
}

TEST(BlockCacheTest, FinalShortBlockRequiresKnownSize) {
  BlockCache cache(SmallCache());
  const uint64_t total = 2 * kBlock + 700;
  std::string data = Pattern(total);

  // Without total_size the trailing 700 bytes are not provably final.
  cache.Insert("k1", V("\"e\""), 0, data);
  EXPECT_EQ(cache.Snapshot().insertions, 2u);
  std::string out;
  EXPECT_FALSE(cache.TryReadFull("k1", 2 * kBlock, 700, &out));

  // With it, the short final block is cached and served.
  cache.Insert("k2", V("\"e\""), 0, data, total);
  EXPECT_TRUE(cache.TryReadFull("k2", 2 * kBlock, 700, &out));
  EXPECT_EQ(out, data.substr(2 * kBlock));
  // The whole object round-trips, short tail included.
  EXPECT_TRUE(cache.TryReadFull("k2", 0, total, &out));
  EXPECT_EQ(out, data);
}

TEST(BlockCacheTest, PrefixAndSuffixCarving) {
  BlockCache cache(SmallCache());
  std::string data = Pattern(8 * kBlock);
  // Cache blocks 0-1 and 5-7; leave 2-4 missing.
  cache.Insert("k", V("\"e\""), 0, std::string_view(data).substr(0, 2 * kBlock),
               8 * kBlock);
  cache.Insert("k", V("\"e\""), 5 * kBlock,
               std::string_view(data).substr(5 * kBlock), 8 * kBlock);

  std::string buf(8 * kBlock, '\0');
  uint64_t prefix = cache.ReadPrefix("k", 0, 8 * kBlock, buf.data());
  EXPECT_EQ(prefix, 2 * kBlock);
  uint64_t suffix = cache.ReadSuffix("k", prefix, 8 * kBlock - prefix,
                                     buf.data() + prefix);
  EXPECT_EQ(suffix, 3 * kBlock);
  EXPECT_EQ(buf.substr(0, 2 * kBlock), data.substr(0, 2 * kBlock));
  EXPECT_EQ(buf.substr(5 * kBlock), data.substr(5 * kBlock));
}

TEST(BlockCacheTest, BlockStraddlingUnalignedRead) {
  BlockCache cache(SmallCache());
  std::string data = Pattern(4 * kBlock);
  cache.Insert("k", V("\"e\""), 0, data, 4 * kBlock);
  // An unaligned span straddling three blocks is stitched seamlessly.
  std::string out;
  EXPECT_TRUE(cache.TryReadFull("k", kBlock - 17, 2 * kBlock + 40, &out));
  EXPECT_EQ(out, data.substr(kBlock - 17, 2 * kBlock + 40));
}

// ---------------------------------------------------------------------------
// Unit: budget, LRU order, invalidation.
// ---------------------------------------------------------------------------

TEST(BlockCacheTest, LruEvictionUnderMemoryPressure) {
  // 1 shard, room for 4 blocks.
  BlockCache cache(SmallCache(4 * kBlock, 1));
  std::string data = Pattern(8 * kBlock);
  cache.Insert("k", V("\"e\""), 0, std::string_view(data).substr(0, 4 * kBlock),
               8 * kBlock);
  EXPECT_EQ(cache.Snapshot().resident_blocks, 4u);

  // Touch block 0 so block 1 is the LRU tail, then insert two more.
  std::string out;
  EXPECT_TRUE(cache.TryReadFull("k", 0, kBlock, &out));
  cache.Insert("k", V("\"e\""), 4 * kBlock,
               std::string_view(data).substr(4 * kBlock, 2 * kBlock),
               8 * kBlock);

  BlockCacheCounters counters = cache.Snapshot();
  EXPECT_EQ(counters.resident_blocks, 4u);
  EXPECT_EQ(counters.evictions, 2u);
  EXPECT_LE(counters.resident_bytes, 4 * kBlock);
  EXPECT_TRUE(cache.TryReadFull("k", 0, kBlock, &out));   // recently touched
  EXPECT_FALSE(cache.TryReadFull("k", kBlock, kBlock, &out));  // evicted
  EXPECT_TRUE(cache.TryReadFull("k", 4 * kBlock, kBlock, &out));
}

TEST(BlockCacheTest, OversizedBlockNeverCached) {
  BlockCacheConfig config;
  config.capacity_bytes = 2 * kBlock;
  config.block_bytes = 4 * kBlock;  // a single block exceeds the budget
  config.shards = 1;
  BlockCache cache(config);
  cache.Insert("k", V("\"e\""), 0, Pattern(4 * kBlock), 4 * kBlock);
  EXPECT_EQ(cache.Snapshot().resident_blocks, 0u);
}

TEST(BlockCacheTest, ValidatorMismatchInvalidates) {
  BlockCache cache(SmallCache());
  std::string v1 = Pattern(2 * kBlock, 1);
  std::string v2 = Pattern(2 * kBlock, 2);
  cache.Insert("k", V("\"gen1\""), 0, v1, 2 * kBlock);
  std::string out;
  ASSERT_TRUE(cache.TryReadFull("k", 0, 2 * kBlock, &out));
  EXPECT_EQ(out, v1);

  // NoteValidator with the same generation keeps the blocks...
  EXPECT_FALSE(cache.NoteValidator("k", V("\"gen1\"")));
  EXPECT_TRUE(cache.HasUrl("k"));
  // ...a new generation drops them before any stale byte is served.
  EXPECT_TRUE(cache.NoteValidator("k", V("\"gen2\"")));
  EXPECT_FALSE(cache.HasUrl("k"));
  EXPECT_FALSE(cache.TryReadFull("k", 0, 2 * kBlock, &out));
  EXPECT_EQ(cache.Snapshot().invalidations, 2u);

  // A fill of the new generation mixes with nothing old.
  cache.Insert("k", V("\"gen2\""), 0, v2, 2 * kBlock);
  ASSERT_TRUE(cache.TryReadFull("k", 0, 2 * kBlock, &out));
  EXPECT_EQ(out, v2);
}

TEST(BlockCacheTest, FillWithNewValidatorReplacesOldGeneration) {
  BlockCache cache(SmallCache());
  std::string v1 = Pattern(4 * kBlock, 1);
  std::string v2 = Pattern(2 * kBlock, 2);
  cache.Insert("k", V("\"gen1\""), 0, v1, 4 * kBlock);
  // Insert carrying different validators purges first: blocks 2-3 of
  // gen1 must not survive next to gen2's blocks 0-1.
  cache.Insert("k", V("\"gen2\""), 0, v2, 4 * kBlock);
  std::string out;
  EXPECT_TRUE(cache.TryReadFull("k", 0, 2 * kBlock, &out));
  EXPECT_EQ(out, v2);
  EXPECT_FALSE(cache.TryReadFull("k", 2 * kBlock, kBlock, &out));
}

TEST(BlockCacheTest, UrlKeyCanonicalisation) {
  auto key = [](const char* url) {
    return BlockCache::UrlKey(*Uri::Parse(url));
  };
  // Default port is made explicit; userinfo and fragment are dropped.
  EXPECT_EQ(key("http://host/f.bin"), key("http://host:80/f.bin"));
  EXPECT_EQ(key("http://user@host/f.bin#frag"), key("http://host/f.bin"));
  // Query strings identify distinct resources.
  EXPECT_NE(key("http://host/f.bin?a=1"), key("http://host/f.bin"));
  EXPECT_NE(key("http://host:81/f.bin"), key("http://host:80/f.bin"));
}

// ---------------------------------------------------------------------------
// Unit: concurrency — eviction racing in-flight fills and lookups.
// ---------------------------------------------------------------------------

TEST(BlockCacheTest, ConcurrentFillLookupEvictInvalidate) {
  // A budget far smaller than the working set keeps eviction constantly
  // racing the fills; a sweeper thread invalidates whole URLs under the
  // readers. Correctness bar: served bytes always match the pattern for
  // their URL generation, and residency never exceeds the budget.
  BlockCache cache(SmallCache(8 * kBlock, 2));
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Spelled without operator+ to dodge GCC 12's -Wrestrict false
      // positive on small-string concatenation inside thread lambdas.
      std::string url("u0");
      url[1] = static_cast<char>('0' + t % 3);
      char seed = static_cast<char>(t % 3);
      std::string data = Pattern(4 * kBlock, seed);
      for (int i = 0; i < kIters; ++i) {
        cache.Insert(url, V("\"g\""), 0, data, 4 * kBlock);
        std::string out;
        uint64_t offset = (i % 4) * kBlock;
        if (cache.TryReadFull(url, offset, kBlock, &out)) {
          if (out != data.substr(offset, kBlock)) corrupt.store(true);
        }
        if (i % 97 == 0) cache.PurgeUrl(url);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(corrupt.load());
  BlockCacheCounters counters = cache.Snapshot();
  EXPECT_LE(counters.resident_bytes, 8 * kBlock);
}

// ---------------------------------------------------------------------------
// Integration: the cache behind the real read paths.
// ---------------------------------------------------------------------------

class BlockCacheIntegrationTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kCacheBlock = 8 * 1024;

  void SetUp() override {
    server_ = testing::StartStorageServer();
    Rng rng(11);
    content_ = rng.Bytes(200'000);  // ~24 blocks + short tail
    server_.store->Put("/f.bin", content_);
    BlockCacheConfig cache_config;
    cache_config.capacity_bytes = 16 * 1024 * 1024;
    cache_config.block_bytes = kCacheBlock;
    context_ = std::make_unique<Context>(SessionPoolConfig{}, 0, cache_config);
    posix_ = std::make_unique<DavPosix>(context_.get());
    params_.metalink_mode = MetalinkMode::kDisabled;
  }

  uint64_t ServerGets() const {
    return server_.handler->stats().get_requests.load();
  }

  TestStorageServer server_;
  std::string content_;
  std::unique_ptr<Context> context_;
  std::unique_ptr<DavPosix> posix_;
  RequestParams params_;
};

TEST_F(BlockCacheIntegrationTest, WarmPReadServedWithoutWireTraffic) {
  ASSERT_OK_AND_ASSIGN(int fd, posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string cold,
                       posix_->PRead(fd, 0, content_.size()));
  EXPECT_EQ(cold, content_);
  uint64_t gets_after_cold = ServerGets();
  EXPECT_GT(gets_after_cold, 0u);

  // Same read again: every block (short tail included) is cached.
  ASSERT_OK_AND_ASSIGN(std::string warm,
                       posix_->PRead(fd, 0, content_.size()));
  EXPECT_EQ(warm, content_);
  EXPECT_EQ(ServerGets(), gets_after_cold);
  IoCounters io = context_->SnapshotCounters();
  EXPECT_GT(io.cache_hits, 0u);
  EXPECT_GE(io.cache_bytes_saved, content_.size());
  ASSERT_OK(posix_->Close(fd));
}

TEST_F(BlockCacheIntegrationTest, StraddlingReadsMixCacheAndWire) {
  ASSERT_OK_AND_ASSIGN(int fd, posix_->Open(server_.UrlFor("/f.bin"), params_));
  // Cache exactly blocks 0-1 via an aligned read.
  ASSERT_OK_AND_ASSIGN(std::string head,
                       posix_->PRead(fd, 0, 2 * kCacheBlock));
  EXPECT_EQ(head, content_.substr(0, 2 * kCacheBlock));

  // A read straddling the cached/uncached boundary: the cached prefix
  // comes from memory, only the suffix hits the wire — and the bytes
  // are stitched correctly.
  ASSERT_OK_AND_ASSIGN(
      std::string straddle,
      posix_->PRead(fd, kCacheBlock - 100, 2 * kCacheBlock));
  EXPECT_EQ(straddle, content_.substr(kCacheBlock - 100, 2 * kCacheBlock));
  IoCounters io = context_->SnapshotCounters();
  EXPECT_GT(io.cache_bytes_saved, 0u);
  ASSERT_OK(posix_->Close(fd));
}

TEST_F(BlockCacheIntegrationTest, VectoredWarmRangesCarvedOut) {
  ASSERT_OK_AND_ASSIGN(int fd, posix_->Open(server_.UrlFor("/f.bin"), params_));
  std::vector<http::ByteRange> ranges = {
      {0, 3 * kCacheBlock}, {10 * kCacheBlock, 2 * kCacheBlock}};
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> cold,
                       posix_->PReadVec(fd, ranges));
  uint64_t gets_after_cold = ServerGets();

  // Warm: both ranges fully cached, the vectored call issues nothing.
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> warm,
                       posix_->PReadVec(fd, ranges));
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(ServerGets(), gets_after_cold);

  // Mixed: one warm range, one new — only the new span hits the wire.
  std::vector<http::ByteRange> mixed = {
      {0, 3 * kCacheBlock}, {15 * kCacheBlock, kCacheBlock}};
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> got,
                       posix_->PReadVec(fd, mixed));
  EXPECT_EQ(got[0], content_.substr(0, 3 * kCacheBlock));
  EXPECT_EQ(got[1], content_.substr(15 * kCacheBlock, kCacheBlock));
  EXPECT_EQ(ServerGets(), gets_after_cold + 1);
  ASSERT_OK(posix_->Close(fd));
}

TEST_F(BlockCacheIntegrationTest, ReadAheadWindowPublishesAndConsumes) {
  params_.readahead_bytes = 16 * 1024;
  params_.readahead_window_chunks = 3;
  ASSERT_OK_AND_ASSIGN(int fd, posix_->Open(server_.UrlFor("/f.bin"), params_));
  std::string streamed;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string chunk, posix_->Read(fd, 20'000));
    if (chunk.empty()) break;
    streamed += chunk;
  }
  EXPECT_EQ(streamed, content_);
  ASSERT_OK(posix_->Close(fd));
  uint64_t gets_after_cold = ServerGets();

  // Second streaming pass: the window's probe serves every chunk from
  // the cache — zero range-GETs on the wire.
  ASSERT_OK_AND_ASSIGN(int fd2,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  std::string warm;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string chunk, posix_->Read(fd2, 20'000));
    if (chunk.empty()) break;
    warm += chunk;
  }
  EXPECT_EQ(warm, content_);
  EXPECT_EQ(ServerGets(), gets_after_cold);
  ASSERT_OK(posix_->Close(fd2));
}

TEST_F(BlockCacheIntegrationTest, SeekDuringWindowedReadStaysCorrect) {
  params_.readahead_bytes = 16 * 1024;
  params_.readahead_window_chunks = 3;
  ASSERT_OK_AND_ASSIGN(int fd, posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string first, posix_->Read(fd, 30'000));
  EXPECT_EQ(first, content_.substr(0, 30'000));
  // Out-of-window backward seek invalidates the prefetch; the re-seeded
  // window must serve the already-cached prefix from memory and stay
  // byte-correct.
  ASSERT_OK_AND_ASSIGN(uint64_t pos, posix_->LSeek(fd, 0, 0));
  EXPECT_EQ(pos, 0u);
  ASSERT_OK_AND_ASSIGN(std::string again, posix_->Read(fd, 30'000));
  EXPECT_EQ(again, content_.substr(0, 30'000));
  ASSERT_OK(posix_->Close(fd));
}

TEST_F(BlockCacheIntegrationTest, OpenRevalidationDropsStaleBlocks) {
  ASSERT_OK_AND_ASSIGN(int fd, posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string cold, posix_->PRead(fd, 0, 50'000));
  EXPECT_EQ(cold, content_.substr(0, 50'000));
  ASSERT_OK(posix_->Close(fd));

  // The object is replaced server-side (new ETag). The default kOnOpen
  // policy revalidates at Open: the next read must see the new bytes,
  // not the cached generation.
  std::string replacement = Rng(12).Bytes(content_.size());
  server_.store->Put("/f.bin", replacement);
  ASSERT_OK_AND_ASSIGN(int fd2,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string fresh, posix_->PRead(fd2, 0, 50'000));
  EXPECT_EQ(fresh, replacement.substr(0, 50'000));
  ASSERT_OK(posix_->Close(fd2));
}

TEST_F(BlockCacheIntegrationTest, AlwaysRevalidationCatchesMidDescriptorChange) {
  params_.cache_revalidation = CacheRevalidatePolicy::kAlways;
  ASSERT_OK_AND_ASSIGN(int fd, posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string cold, posix_->PRead(fd, 0, 50'000));
  EXPECT_EQ(cold, content_.substr(0, 50'000));

  // Replace the object while the descriptor stays open: kAlways HEADs
  // before serving cached blocks and must observe the new generation.
  std::string replacement = Rng(13).Bytes(content_.size());
  server_.store->Put("/f.bin", replacement);
  ASSERT_OK_AND_ASSIGN(std::string fresh, posix_->PRead(fd, 0, 50'000));
  EXPECT_EQ(fresh, replacement.substr(0, 50'000));
  ASSERT_OK(posix_->Close(fd));
}

TEST_F(BlockCacheIntegrationTest, AlwaysRevalidationAppliesToWindowedReads) {
  // kAlways disables the read-ahead window's cache probe: cached chunks
  // must flow through the fetch path, whose HEAD revalidation observes
  // a mid-stream replacement — the window may never serve stale blocks
  // under the strongest freshness policy.
  params_.cache_revalidation = CacheRevalidatePolicy::kAlways;
  params_.readahead_bytes = 16 * 1024;
  params_.readahead_window_chunks = 3;
  ASSERT_OK_AND_ASSIGN(int fd, posix_->Open(server_.UrlFor("/f.bin"), params_));
  std::string cold;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string chunk, posix_->Read(fd, 20'000));
    if (chunk.empty()) break;
    cold += chunk;
  }
  EXPECT_EQ(cold, content_);
  ASSERT_OK(posix_->Close(fd));

  std::string replacement = Rng(14).Bytes(content_.size());
  server_.store->Put("/f.bin", replacement);
  ASSERT_OK_AND_ASSIGN(int fd2,
                       posix_->Open(server_.UrlFor("/f.bin"), params_));
  std::string fresh;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string chunk, posix_->Read(fd2, 20'000));
    if (chunk.empty()) break;
    fresh += chunk;
  }
  EXPECT_EQ(fresh, replacement);
  ASSERT_OK(posix_->Close(fd2));
}

TEST_F(BlockCacheIntegrationTest, GenerationChangeMidReadNeverTearsBytes) {
  // Even under kNever, a read that mixes cached bytes with a network
  // fill whose validators reveal a replaced object must not return a
  // stitched buffer of two generations: the dispatch detects the purge
  // and refetches coherently with the cache bypassed.
  params_.cache_revalidation = CacheRevalidatePolicy::kNever;
  ASSERT_OK_AND_ASSIGN(int fd, posix_->Open(server_.UrlFor("/f.bin"), params_));
  ASSERT_OK_AND_ASSIGN(std::string head,
                       posix_->PRead(fd, 0, 2 * kCacheBlock));
  EXPECT_EQ(head, content_.substr(0, 2 * kCacheBlock));

  std::string replacement = Rng(15).Bytes(content_.size());
  server_.store->Put("/f.bin", replacement);

  // Prefix would come from the gen-A cache, the tail from the gen-B
  // wire; the result must be pure gen-B.
  ASSERT_OK_AND_ASSIGN(std::string got,
                       posix_->PRead(fd, 0, 4 * kCacheBlock));
  EXPECT_EQ(got, replacement.substr(0, 4 * kCacheBlock));
  ASSERT_OK(posix_->Close(fd));
}

TEST_F(BlockCacheIntegrationTest, DisabledCacheIsBitIdentical) {
  // A cache-less Context and a per-request opt-out must both produce
  // byte-identical reads with identical wire behaviour.
  Context plain_context;
  DavPosix plain(&plain_context);
  ASSERT_OK_AND_ASSIGN(int fd_plain,
                       plain.Open(server_.UrlFor("/f.bin"), params_));
  uint64_t gets_before = ServerGets();
  ASSERT_OK_AND_ASSIGN(std::string a, plain.PRead(fd_plain, 100, 60'000));
  ASSERT_OK_AND_ASSIGN(std::string b, plain.PRead(fd_plain, 100, 60'000));
  uint64_t plain_gets = ServerGets() - gets_before;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, content_.substr(100, 60'000));
  EXPECT_EQ(plain_gets, 2u);  // no cache: both reads hit the wire
  EXPECT_EQ(plain_context.SnapshotCounters().cache_hits, 0u);
  ASSERT_OK(plain.Close(fd_plain));

  // Opt-out on a cache-enabled Context behaves the same way.
  RequestParams bypass = params_;
  bypass.use_block_cache = false;
  ASSERT_OK_AND_ASSIGN(int fd,
                       posix_->Open(server_.UrlFor("/f.bin"), bypass));
  gets_before = ServerGets();
  ASSERT_OK_AND_ASSIGN(std::string c, posix_->PRead(fd, 100, 60'000));
  ASSERT_OK_AND_ASSIGN(std::string d, posix_->PRead(fd, 100, 60'000));
  EXPECT_EQ(ServerGets() - gets_before, 2u);
  EXPECT_EQ(c, a);
  EXPECT_EQ(d, a);
  EXPECT_EQ(context_->SnapshotCounters().cache_bytes_saved, 0u);
  ASSERT_OK(posix_->Close(fd));
}

TEST_F(BlockCacheIntegrationTest, EvictionPressureKeepsReadsCorrect) {
  // A Context whose cache holds only a sliver of the object: constant
  // eviction while the dispatcher fills concurrently. Reads must stay
  // correct and residency bounded.
  BlockCacheConfig tiny;
  tiny.capacity_bytes = 4 * kCacheBlock;
  tiny.block_bytes = kCacheBlock;
  tiny.shards = 1;
  Context context(SessionPoolConfig{}, 0, tiny);
  DavPosix posix(&context);
  ASSERT_OK_AND_ASSIGN(int fd, posix.Open(server_.UrlFor("/f.bin"), params_));
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_OK_AND_ASSIGN(std::string all,
                         posix.PRead(fd, 0, content_.size()));
    EXPECT_EQ(all, content_);
  }
  BlockCacheCounters counters = context.block_cache().Snapshot();
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_LE(counters.resident_bytes, tiny.capacity_bytes);
  ASSERT_OK(posix.Close(fd));
}

}  // namespace
}  // namespace core
}  // namespace davix
