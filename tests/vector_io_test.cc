#include <algorithm>

#include "common/rng.h"
#include "core/vector_io.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace core {
namespace {

using http::ByteRange;

TEST(CoalesceTest, EmptyInput) {
  EXPECT_TRUE(CoalesceRanges({}, 0).empty());
}

TEST(CoalesceTest, SingleRangePassesThrough) {
  auto out = CoalesceRanges({{100, 50}}, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].range, (ByteRange{100, 50}));
  EXPECT_EQ(out[0].sources, std::vector<size_t>{0});
}

TEST(CoalesceTest, AdjacentRangesMergeWithZeroGap) {
  auto out = CoalesceRanges({{0, 10}, {10, 10}}, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].range, (ByteRange{0, 20}));
}

TEST(CoalesceTest, GapRespected) {
  // 5-byte gap: merged when max_gap >= 5, separate when smaller.
  auto merged = CoalesceRanges({{0, 10}, {15, 10}}, 5);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].range, (ByteRange{0, 25}));

  auto split = CoalesceRanges({{0, 10}, {15, 10}}, 4);
  ASSERT_EQ(split.size(), 2u);
}

TEST(CoalesceTest, UnsortedAndOverlappingInputs) {
  auto out = CoalesceRanges({{50, 30}, {0, 10}, {60, 40}, {5, 10}}, 0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].range, (ByteRange{0, 15}));
  EXPECT_EQ(out[1].range, (ByteRange{50, 50}));
  // All four sources accounted for.
  size_t total_sources = out[0].sources.size() + out[1].sources.size();
  EXPECT_EQ(total_sources, 4u);
}

TEST(CoalesceTest, ZeroLengthRangesSkipped) {
  auto out = CoalesceRanges({{10, 0}, {20, 5}}, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sources, std::vector<size_t>{1});
}

TEST(CoalesceTest, DuplicateRangesShareWireRange) {
  auto out = CoalesceRanges({{7, 3}, {7, 3}, {7, 3}}, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sources.size(), 3u);
}

TEST(SplitBatchesTest, RespectsCap) {
  std::vector<CoalescedRange> wire(10);
  for (size_t i = 0; i < wire.size(); ++i) {
    wire[i].range = {i * 100, 10};
  }
  auto batches = SplitBatches(wire, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 4u);
  EXPECT_EQ(batches[1].size(), 4u);
  EXPECT_EQ(batches[2].size(), 2u);
}

TEST(SplitBatchesTest, ZeroCapActsAsOne) {
  std::vector<CoalescedRange> wire(3);
  EXPECT_EQ(SplitBatches(wire, 0).size(), 3u);
}

TEST(SplitBatchesTest, ByteCapClosesBatches) {
  // Five 100-byte wire ranges, 250-byte cap: batches close at >= 250
  // bytes, so [3, 2] — the count cap alone (10) would keep all five
  // together.
  std::vector<CoalescedRange> wire(5);
  for (size_t i = 0; i < wire.size(); ++i) {
    wire[i].range = {i * 1000, 100};
  }
  auto batches = SplitBatches(wire, 10, 250);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_EQ(batches[1].size(), 2u);
}

TEST(SplitBatchesTest, ByteCapTakesAtLeastOneRange) {
  // A single wire range larger than the cap still forms a batch.
  std::vector<CoalescedRange> wire(3);
  for (size_t i = 0; i < wire.size(); ++i) {
    wire[i].range = {i * 1000, 500};
  }
  auto batches = SplitBatches(wire, 10, 100);
  ASSERT_EQ(batches.size(), 3u);
  for (const auto& batch : batches) EXPECT_EQ(batch.size(), 1u);
}

TEST(SplitOversizedTest, ZeroChunkBytesPassesThrough) {
  auto wire = CoalesceRanges({{0, 100}, {100, 100}}, 0);
  ASSERT_EQ(wire.size(), 1u);
  auto out = SplitOversized(wire, {{0, 100}, {100, 100}}, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].range, (ByteRange{0, 200}));
}

TEST(SplitOversizedTest, CutsOnSourceBoundaries) {
  // Four adjacent 100-byte user ranges coalesce to one 400-byte wire
  // range; a 200-byte chunk limit cuts it into two chunks of two
  // sources each, at the user-range boundary.
  std::vector<ByteRange> requested = {{0, 100}, {100, 100}, {200, 100},
                                      {300, 100}};
  auto wire = CoalesceRanges(requested, 0);
  ASSERT_EQ(wire.size(), 1u);
  auto out = SplitOversized(std::move(wire), requested, 200);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].range, (ByteRange{0, 200}));
  EXPECT_EQ(out[1].range, (ByteRange{200, 200}));
  EXPECT_EQ(out[0].sources, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(out[1].sources, (std::vector<size_t>{2, 3}));
}

TEST(SplitOversizedTest, SingleHugeSourceNeverSplit) {
  // One user range larger than the chunk limit must stay whole: its
  // scatter slot is filled exactly once.
  std::vector<ByteRange> requested = {{0, 1000}};
  auto wire = CoalesceRanges(requested, 0);
  auto out = SplitOversized(std::move(wire), requested, 64);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].range, (ByteRange{0, 1000}));
}

TEST(SplitOversizedTest, OversizedSourceInRunGetsOwnChunk) {
  // small + huge + small: the huge middle source exceeds the limit on
  // its own, so it lands in its own chunk and the smalls split around it.
  std::vector<ByteRange> requested = {{0, 50}, {50, 500}, {550, 50}};
  auto wire = CoalesceRanges(requested, 0);
  ASSERT_EQ(wire.size(), 1u);
  auto out = SplitOversized(std::move(wire), requested, 100);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].range, (ByteRange{0, 50}));
  EXPECT_EQ(out[1].range, (ByteRange{50, 500}));
  EXPECT_EQ(out[2].range, (ByteRange{550, 50}));
}

// Property: splitting preserves the coalescing containment invariant and
// scatter still reconstructs every user byte, over random workloads.
class SplitOversizedPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SplitOversizedPropertyTest, ContainmentAndScatterSurvive) {
  Rng rng(GetParam());
  std::string resource = rng.Bytes(1 << 16);
  size_t n = 1 + rng.Below(80);
  std::vector<ByteRange> requested;
  for (size_t i = 0; i < n; ++i) {
    uint64_t offset = rng.Below(resource.size() - 1);
    uint64_t length = 1 + rng.Below(2048);
    length = std::min<uint64_t>(length, resource.size() - offset);
    requested.push_back(ByteRange{offset, length});
  }
  uint64_t max_gap = rng.Below(512);
  uint64_t max_chunk = 1 + rng.Below(4096);
  auto wire = SplitOversized(CoalesceRanges(requested, max_gap), requested,
                             max_chunk);

  // Every user range contained in exactly one chunk; multi-source chunks
  // respect the byte limit.
  std::vector<int> covered(requested.size(), 0);
  for (const CoalescedRange& w : wire) {
    ASSERT_FALSE(w.sources.empty());
    if (w.sources.size() >= 2) {
      EXPECT_LE(w.range.length, max_chunk);
    }
    for (size_t idx : w.sources) {
      ++covered[idx];
      EXPECT_GE(requested[idx].offset, w.range.offset);
      EXPECT_LE(requested[idx].offset + requested[idx].length,
                w.range.offset + w.range.length);
    }
  }
  for (size_t i = 0; i < requested.size(); ++i) {
    EXPECT_EQ(covered[i], 1) << "index " << i;
  }

  // Scatter through the chunked plan reconstructs the user bytes.
  std::vector<std::string> results(requested.size());
  for (const CoalescedRange& w : wire) {
    ASSERT_OK(ScatterWireRange(
        w, std::string_view(resource).substr(w.range.offset, w.range.length),
        requested, &results));
  }
  for (size_t i = 0; i < requested.size(); ++i) {
    EXPECT_EQ(results[i], resource.substr(requested[i].offset,
                                          requested[i].length));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitOversizedPropertyTest,
                         ::testing::Range<uint64_t>(1, 49));

TEST(ScatterTest, FillsUserSlots) {
  std::vector<ByteRange> requested = {{10, 5}, {20, 5}};
  auto wire_ranges = CoalesceRanges(requested, 100);
  ASSERT_EQ(wire_ranges.size(), 1u);
  // Wire range covers [10, 25): 15 bytes.
  std::string data = "ABCDEFGHIJKLMNO";
  std::vector<std::string> results(2);
  ASSERT_OK(ScatterWireRange(wire_ranges[0], data, requested, &results));
  EXPECT_EQ(results[0], "ABCDE");
  EXPECT_EQ(results[1], "KLMNO");
}

TEST(ScatterTest, SizeMismatchRejected) {
  std::vector<ByteRange> requested = {{0, 5}};
  auto wire = CoalesceRanges(requested, 0);
  std::vector<std::string> results(1);
  EXPECT_FALSE(ScatterWireRange(wire[0], "toolongdata", requested, &results)
                   .ok());
}

// Property suite: coalescing invariants over random workloads.
class CoalescePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalescePropertyTest, Invariants) {
  Rng rng(GetParam());
  uint64_t max_gap = rng.Below(4096);
  size_t n = 1 + rng.Below(200);
  std::vector<ByteRange> requested;
  for (size_t i = 0; i < n; ++i) {
    requested.push_back(
        ByteRange{rng.Below(1 << 20), rng.Below(2048)});  // may be empty
  }
  auto wire = CoalesceRanges(requested, max_gap);

  // (1) Sorted, disjoint, gaps > max_gap.
  for (size_t i = 1; i < wire.size(); ++i) {
    uint64_t prev_end = wire[i - 1].range.offset + wire[i - 1].range.length;
    EXPECT_GT(wire[i].range.offset, prev_end + max_gap);
  }

  // (2) Every non-empty user range is covered by exactly one wire range.
  std::vector<int> covered(requested.size(), 0);
  for (const CoalescedRange& w : wire) {
    for (size_t idx : w.sources) {
      ++covered[idx];
      EXPECT_GE(requested[idx].offset, w.range.offset);
      EXPECT_LE(requested[idx].offset + requested[idx].length,
                w.range.offset + w.range.length);
    }
  }
  for (size_t i = 0; i < requested.size(); ++i) {
    EXPECT_EQ(covered[i], requested[i].length == 0 ? 0 : 1) << "index " << i;
  }

  // (3) Wire bytes bounded by user bytes + permitted gap waste.
  uint64_t wire_bytes = 0;
  for (const CoalescedRange& w : wire) wire_bytes += w.range.length;
  uint64_t user_bytes = 0;
  for (const ByteRange& r : requested) user_bytes += r.length;
  uint64_t gap_allowance = wire.empty() ? 0 : (n - 1) * max_gap;
  EXPECT_LE(wire_bytes, user_bytes + gap_allowance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescePropertyTest,
                         ::testing::Range<uint64_t>(1, 65));

// Property: scatter reconstructs exactly the user bytes from a synthetic
// resource, over random plans.
class ScatterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScatterPropertyTest, ReconstructsUserBytes) {
  Rng rng(GetParam());
  std::string resource = rng.Bytes(1 << 16);
  size_t n = 1 + rng.Below(50);
  std::vector<ByteRange> requested;
  for (size_t i = 0; i < n; ++i) {
    uint64_t offset = rng.Below(resource.size() - 1);
    uint64_t length = 1 + rng.Below(resource.size() - offset);
    requested.push_back(ByteRange{offset, length});
  }
  uint64_t max_gap = rng.Below(1024);
  auto wire = CoalesceRanges(requested, max_gap);
  std::vector<std::string> results(requested.size());
  for (const CoalescedRange& w : wire) {
    ASSERT_OK(ScatterWireRange(
        w, std::string_view(resource).substr(w.range.offset, w.range.length),
        requested, &results));
  }
  for (size_t i = 0; i < requested.size(); ++i) {
    EXPECT_EQ(results[i], resource.substr(requested[i].offset,
                                          requested[i].length));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScatterPropertyTest,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace core
}  // namespace davix
