#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace core {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

class DavFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = testing::StartStorageServer();
    Rng rng(99);
    content_ = rng.Bytes(256 * 1024);
    server_.store->Put("/data.bin", content_);
    context_ = std::make_unique<Context>();
    params_.metalink_mode = MetalinkMode::kDisabled;
  }

  DavFile File(const std::string& path) {
    return *DavFile::Make(context_.get(), server_.UrlFor(path));
  }

  TestStorageServer server_;
  std::string content_;
  std::unique_ptr<Context> context_;
  RequestParams params_;
};

TEST_F(DavFileTest, GetWholeObject) {
  DavFile file = File("/data.bin");
  ASSERT_OK_AND_ASSIGN(std::string body, file.Get(params_));
  EXPECT_EQ(body, content_);
}

TEST_F(DavFileTest, GetMissingIsNotFound) {
  DavFile file = File("/missing");
  Result<std::string> result = file.Get(params_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(DavFileTest, PutCreatesAndStatSeesIt) {
  DavFile file = File("/new.obj");
  ASSERT_OK(file.Put("fresh bytes", params_));
  ASSERT_OK_AND_ASSIGN(FileInfo info, file.Stat(params_));
  EXPECT_EQ(info.size, 11u);
  EXPECT_FALSE(info.etag.empty());
  EXPECT_GT(info.mtime_epoch_seconds, 0);
}

TEST_F(DavFileTest, DeleteRemoves) {
  DavFile file = File("/data.bin");
  ASSERT_OK(file.Delete(params_));
  EXPECT_FALSE(file.Stat(params_).ok());
}

TEST_F(DavFileTest, ReadPartialMatchesSubstring) {
  DavFile file = File("/data.bin");
  ASSERT_OK_AND_ASSIGN(std::string data, file.ReadPartial(1000, 500, params_));
  EXPECT_EQ(data, content_.substr(1000, 500));
}

TEST_F(DavFileTest, ReadPartialZeroLength) {
  DavFile file = File("/data.bin");
  ASSERT_OK_AND_ASSIGN(std::string data, file.ReadPartial(0, 0, params_));
  EXPECT_TRUE(data.empty());
}

TEST_F(DavFileTest, ReadPartialVecScattered) {
  DavFile file = File("/data.bin");
  std::vector<http::ByteRange> ranges = {
      {0, 16}, {100'000, 64}, {50'000, 128}, {content_.size() - 10, 10}};
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params_));
  ASSERT_EQ(results.size(), ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset, ranges[i].length));
  }
  // The four scattered ranges went out as ONE multi-range query (§2.3).
  EXPECT_EQ(context_->SnapshotCounters().vector_queries, 1u);
  EXPECT_EQ(server_.handler->stats().multirange_requests.load(), 1u);
}

TEST_F(DavFileTest, VectorCoalescingReducesWireRanges) {
  DavFile file = File("/data.bin");
  // 32 tiny reads within one 4 KiB window coalesce into one wire range.
  std::vector<http::ByteRange> ranges;
  for (int i = 0; i < 32; ++i) ranges.push_back({uint64_t(i) * 100, 50});
  params_.vector_gap_bytes = 4096;
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params_));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset, ranges[i].length));
  }
  // One wire range => the server saw a single-range request, not 32.
  EXPECT_EQ(server_.handler->stats().multirange_requests.load(), 0u);
  EXPECT_EQ(server_.handler->stats().range_requests.load(), 1u);
}

TEST_F(DavFileTest, BatchSplittingHonoursMaxRanges) {
  DavFile file = File("/data.bin");
  params_.vector_gap_bytes = 0;
  params_.max_ranges_per_request = 4;
  std::vector<http::ByteRange> ranges;
  for (int i = 0; i < 10; ++i) {
    ranges.push_back({uint64_t(i) * 10'000, 100});
  }
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params_));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset, ranges[i].length));
  }
  // ceil(10/4) = 3 wire queries.
  EXPECT_EQ(context_->SnapshotCounters().vector_queries, 3u);
}

TEST_F(DavFileTest, FallbackWhenServerLacksMultirange) {
  server_.handler->set_support_multirange(false);
  DavFile file = File("/data.bin");
  params_.vector_gap_bytes = 0;
  std::vector<http::ByteRange> ranges = {{10, 20}, {100'000, 30}, {5, 3}};
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params_));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset, ranges[i].length));
  }
}

TEST_F(DavFileTest, ParallelDispatchMultipleBatchesInFlight) {
  // A shaped (2 ms RTT) server so the four batches genuinely overlap.
  httpd::ServerConfig config;
  config.link = netsim::LinkProfile::Lan();
  TestStorageServer server = StartStorageServer(config);
  server.store->Put("/data.bin", content_);
  Context context;
  DavFile file = *DavFile::Make(&context, server.UrlFor("/data.bin"));

  params_.vector_gap_bytes = 0;
  params_.max_ranges_per_request = 4;
  params_.max_parallel_range_requests = 4;
  std::vector<http::ByteRange> ranges;
  for (int i = 0; i < 16; ++i) {
    ranges.push_back({uint64_t(i) * 10'000, 100});
  }
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params_));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset, ranges[i].length));
  }
  // Same wire shape as sequential dispatch: 4 multi-range queries.
  EXPECT_EQ(context.SnapshotCounters().vector_queries, 4u);
  EXPECT_EQ(server.handler->stats().multirange_requests.load(), 4u);
  // The concurrent burst drew several connections to the one host...
  EXPECT_GE(context.pool().stats().connects.load(), 2u);
  // ...and parked every one of them back for recycling afterwards.
  EXPECT_EQ(context.pool().IdleCount(),
            context.pool().stats().connects.load());
}

TEST_F(DavFileTest, ParallelFallbackWhenServerLacksMultirange) {
  // Under parallel dispatch, the 200 full-entity fallback must demote the
  // read to single-stream: batches that start after the entity arrived
  // are satisfied locally, and every byte still comes out right.
  httpd::ServerConfig config;
  config.link = netsim::LinkProfile::Lan();
  TestStorageServer server = StartStorageServer(config);
  server.store->Put("/data.bin", content_);
  server.handler->set_support_multirange(false);
  Context context;
  DavFile file = *DavFile::Make(&context, server.UrlFor("/data.bin"));

  params_.vector_gap_bytes = 0;
  params_.max_ranges_per_request = 4;
  params_.max_parallel_range_requests = 4;
  std::vector<http::ByteRange> ranges;
  for (int i = 0; i < 16; ++i) {
    ranges.push_back({uint64_t(i) * 10'000, 100});
  }
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params_));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset, ranges[i].length));
  }
  // Never more wire requests than batches, regardless of how the 200s
  // and the demotion interleave.
  EXPECT_LE(context.SnapshotCounters().requests, 4u);
  EXPECT_GE(context.SnapshotCounters().requests, 1u);
}

TEST_F(DavFileTest, ParallelMidStreamFaultSurfacesFirstError) {
  // Every response body is truncated mid-stream: the dispatch must fail
  // cleanly (first-error cancellation), not hang or crash.
  TestStorageServer server = StartStorageServer();
  server.store->Put("/data.bin", content_);
  server.server->faults().AddRule(
      {"/data.bin", netsim::FaultAction::kTruncateBody, 1.0, -1, 0});
  Context context;
  DavFile file = *DavFile::Make(&context, server.UrlFor("/data.bin"));

  params_.vector_gap_bytes = 0;
  params_.max_ranges_per_request = 4;
  params_.max_parallel_range_requests = 4;
  params_.max_retries = 0;
  std::vector<http::ByteRange> ranges;
  for (int i = 0; i < 16; ++i) {
    ranges.push_back({uint64_t(i) * 10'000, 100});
  }
  Result<std::vector<std::string>> result =
      file.ReadPartialVec(ranges, params_);
  ASSERT_FALSE(result.ok());
}

TEST_F(DavFileTest, ParallelDispatchRecoversFromTransientFaults) {
  // Two mid-stream truncations, then a healthy server: the per-request
  // retry machinery absorbs the faults underneath the parallel dispatch.
  TestStorageServer server = StartStorageServer();
  server.store->Put("/data.bin", content_);
  server.server->faults().AddRule(
      {"/data.bin", netsim::FaultAction::kTruncateBody, 1.0, 2, 0});
  Context context;
  DavFile file = *DavFile::Make(&context, server.UrlFor("/data.bin"));

  params_.vector_gap_bytes = 0;
  params_.max_ranges_per_request = 4;
  params_.max_parallel_range_requests = 4;
  std::vector<http::ByteRange> ranges;
  for (int i = 0; i < 16; ++i) {
    ranges.push_back({uint64_t(i) * 10'000, 100});
  }
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params_));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset, ranges[i].length));
  }
  EXPECT_EQ(server.server->stats().faults_injected.load(), 2u);
}

TEST_F(DavFileTest, OverlappingAndDuplicateRanges) {
  DavFile file = File("/data.bin");
  std::vector<http::ByteRange> ranges = {
      {100, 200}, {150, 200}, {100, 200}, {0, 1}};
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params_));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content_.substr(ranges[i].offset, ranges[i].length));
  }
}

TEST_F(DavFileTest, EmptyVectorIsNoop) {
  DavFile file = File("/data.bin");
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec({}, params_));
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(context_->SnapshotCounters().requests, 0u);
}

// Property: random vectored reads equal direct substring extraction,
// under randomised params (gap, batch size, multirange support).
class DavFileVecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DavFileVecPropertyTest, MatchesLocalTruth) {
  TestStorageServer server = StartStorageServer();
  Rng rng(GetParam());
  std::string content = rng.Bytes(64 * 1024 + rng.Below(64 * 1024));
  server.store->Put("/obj", content);
  server.handler->set_support_multirange(rng.Chance(0.7));

  Context context;
  RequestParams params;
  params.metalink_mode = MetalinkMode::kDisabled;
  params.vector_gap_bytes = rng.Below(8192);
  params.max_ranges_per_request = 1 + rng.Below(16);
  params.max_parallel_range_requests = 1 + rng.Below(6);
  DavFile file = *DavFile::Make(&context, server.UrlFor("/obj"));

  std::vector<http::ByteRange> ranges;
  size_t n = 1 + rng.Below(40);
  for (size_t i = 0; i < n; ++i) {
    uint64_t offset = rng.Below(content.size());
    uint64_t length = 1 + rng.Below(2000);
    length = std::min<uint64_t>(length, content.size() - offset);
    ranges.push_back({offset, length});
  }
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params));
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(results[i], content.substr(ranges[i].offset, ranges[i].length))
        << "range " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DavFileVecPropertyTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace core
}  // namespace davix
