// Adversarial wire-level tests: the embedded server must survive
// malformed, truncated and abusive inputs without crashing, hanging or
// leaking connections — table stakes for anything exposed to a WAN.

#include <thread>

#include "common/clock.h"
#include "core/context.h"
#include "core/http_client.h"
#include "net/buffered_reader.h"
#include "net/socket_address.h"
#include "net/tcp_socket.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    httpd::ServerConfig config;
    config.idle_timeout_micros = 300'000;  // fast idle reaping for tests
    server_ = StartStorageServer(config);
    server_.store->Put("/f", "payload-bytes");
  }

  net::TcpSocket Connect() {
    auto address =
        net::SocketAddress::Resolve("127.0.0.1", server_.server->port());
    auto socket = net::TcpSocket::Connect(*address);
    EXPECT_TRUE(socket.ok());
    return std::move(*socket);
  }

  /// Sends raw bytes, returns everything the server answers before
  /// closing (empty when it just drops the connection).
  std::string RawExchange(const std::string& bytes) {
    net::TcpSocket socket = Connect();
    EXPECT_OK(socket.WriteAll(bytes));
    socket.ShutdownWrite();
    std::string response;
    net::BufferedReader reader(&socket, 2'000'000);
    (void)reader.ReadToEof(&response);
    return response;
  }

  /// The server must still answer a clean request afterwards.
  void ExpectServerStillHealthy() {
    core::Context context;
    core::HttpClient client(&context);
    core::RequestParams params;
    auto exchange = client.Execute(*Uri::Parse(server_.UrlFor("/f")),
                                   http::Method::kGet, params);
    ASSERT_TRUE(exchange.ok()) << exchange.status().ToString();
    EXPECT_EQ(exchange->response.status_code, 200);
  }

  TestStorageServer server_;
};

TEST_F(RobustnessTest, GarbageRequestLineDropped) {
  std::string response = RawExchange("\x01\x02\x03 garbage\r\n\r\n");
  EXPECT_TRUE(response.empty());  // dropped, no crash
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, UnknownMethodDropped) {
  RawExchange("BREW /coffee HTTP/1.1\r\nHost: x\r\n\r\n");
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, OversizedHeaderLineRejected) {
  std::string huge_header =
      "GET /f HTTP/1.1\r\nX-Pad: " + std::string(200'000, 'a') + "\r\n\r\n";
  RawExchange(huge_header);
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, AbsurdContentLengthDoesNotAllocate) {
  RawExchange(
      "PUT /f HTTP/1.1\r\nHost: x\r\nContent-Length: "
      "99999999999999999999\r\n\r\n");
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, TruncatedBodyDropped) {
  RawExchange("PUT /f HTTP/1.1\r\nContent-Length: 1000\r\n\r\nshort");
  ExpectServerStillHealthy();
  // The partial PUT must not have replaced the object.
  ASSERT_OK_AND_ASSIGN(auto object, server_.store->Get("/f"));
  EXPECT_EQ(object->data, "payload-bytes");
}

TEST_F(RobustnessTest, ImmediateCloseHandled) {
  for (int i = 0; i < 10; ++i) {
    net::TcpSocket socket = Connect();
    socket.Close();
  }
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, SlowClientTimesOutAndIsReaped) {
  net::TcpSocket socket = Connect();
  // Send half a request line and stall past the idle timeout.
  ASSERT_OK(socket.WriteAll("GET /f HT"));
  SleepForMicros(500'000);  // > idle_timeout
  ExpectServerStillHealthy();
  // Connection should be gone (reaped), not stuck.
  for (int i = 0; i < 50; ++i) {
    if (server_.server->stats().connections_active.load() <= 1) break;
    SleepForMicros(20'000);
  }
  EXPECT_LE(server_.server->stats().connections_active.load(), 1u);
}

TEST_F(RobustnessTest, PipelinedBurstAnsweredInOrder) {
  std::string burst;
  for (int i = 0; i < 8; ++i) {
    burst += "GET /f HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  std::string response = RawExchange(burst);
  // All eight responses, in order, each a 200.
  size_t count = 0;
  size_t pos = 0;
  while ((pos = response.find("HTTP/1.1 200", pos)) != std::string::npos) {
    ++count;
    pos += 8;
  }
  EXPECT_EQ(count, 8u);
}

TEST_F(RobustnessTest, Http10ClientGetsConnectionClose) {
  std::string response =
      RawExchange("GET /f HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
}

TEST_F(RobustnessTest, HeadOnMissingObject) {
  std::string response = RawExchange("HEAD /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  // No body after the blank line for HEAD.
  size_t head_end = response.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_EQ(response.size(), head_end + 4);
}

TEST_F(RobustnessTest, BadChunkedRequestDropped) {
  RawExchange(
      "PUT /f HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "not-hex\r\nxxxx\r\n0\r\n\r\n");
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, ManyConcurrentConnections) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      core::Context context;
      core::HttpClient client(&context);
      core::RequestParams params;
      params.keep_alive = false;  // force one connection per request
      for (int i = 0; i < 5; ++i) {
        auto exchange = client.Execute(*Uri::Parse(server_.UrlFor("/f")),
                                       http::Method::kGet, params);
        if (!exchange.ok() || exchange->response.status_code != 200) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(RobustnessTest, StopWithOpenConnectionsDoesNotHang) {
  // Park several idle keep-alive connections, then stop the server; the
  // test passing at all (no deadlock under the 300 s ctest timeout)
  // is the assertion.
  std::vector<net::TcpSocket> parked;
  for (int i = 0; i < 4; ++i) parked.push_back(Connect());
  Stopwatch stopwatch;
  server_.server->Stop();
  EXPECT_LT(stopwatch.ElapsedSeconds(), 5.0);
}

}  // namespace
}  // namespace davix
