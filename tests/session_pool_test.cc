#include <atomic>
#include <thread>

#include "common/clock.h"
#include "core/context.h"
#include "core/http_client.h"
#include "core/session_pool.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace core {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

class SessionPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = testing::StartStorageServer();
    server_.store->Put("/f", "data");
    uri_ = *Uri::Parse(server_.UrlFor("/f"));
  }

  TestStorageServer server_;
  Uri uri_;
  RequestParams params_;
};

TEST_F(SessionPoolTest, AcquireConnectsThenRecycles) {
  SessionPool pool;
  ASSERT_OK_AND_ASSIGN(auto session, pool.Acquire(uri_, params_));
  EXPECT_FALSE(session->recycled());
  EXPECT_EQ(pool.stats().connects.load(), 1u);

  pool.Release(std::move(session));
  EXPECT_EQ(pool.IdleCount(), 1u);

  ASSERT_OK_AND_ASSIGN(auto again, pool.Acquire(uri_, params_));
  EXPECT_TRUE(again->recycled());
  EXPECT_EQ(pool.stats().connects.load(), 1u);
  EXPECT_EQ(pool.stats().recycled.load(), 1u);
  EXPECT_EQ(pool.IdleCount(), 0u);
}

TEST_F(SessionPoolTest, KeepAliveDisabledNeverRecycles) {
  SessionPool pool;
  params_.keep_alive = false;
  ASSERT_OK_AND_ASSIGN(auto first, pool.Acquire(uri_, params_));
  pool.Release(std::move(first));
  ASSERT_OK_AND_ASSIGN(auto second, pool.Acquire(uri_, params_));
  EXPECT_FALSE(second->recycled());
  EXPECT_EQ(pool.stats().connects.load(), 2u);
}

TEST_F(SessionPoolTest, BucketsAreKeyedByHostPort) {
  TestStorageServer other = testing::StartStorageServer();
  other.store->Put("/f", "data");
  Uri other_uri = *Uri::Parse(other.UrlFor("/f"));

  SessionPool pool;
  ASSERT_OK_AND_ASSIGN(auto a, pool.Acquire(uri_, params_));
  pool.Release(std::move(a));
  // A different host:port must not steal the pooled session.
  ASSERT_OK_AND_ASSIGN(auto b, pool.Acquire(other_uri, params_));
  EXPECT_FALSE(b->recycled());
  EXPECT_EQ(pool.IdleCount(), 1u);
}

TEST_F(SessionPoolTest, LifoReuseReturnsWarmest) {
  SessionPool pool;
  ASSERT_OK_AND_ASSIGN(auto first, pool.Acquire(uri_, params_));
  ASSERT_OK_AND_ASSIGN(auto second, pool.Acquire(uri_, params_));
  first->IncrementExchanges();  // mark to tell them apart
  Session* first_ptr = first.get();
  Session* second_ptr = second.get();
  pool.Release(std::move(first));
  pool.Release(std::move(second));
  // LIFO: the most recently released (second) comes back first.
  ASSERT_OK_AND_ASSIGN(auto reused, pool.Acquire(uri_, params_));
  EXPECT_EQ(reused.get(), second_ptr);
  ASSERT_OK_AND_ASSIGN(auto reused2, pool.Acquire(uri_, params_));
  EXPECT_EQ(reused2.get(), first_ptr);
}

TEST_F(SessionPoolTest, IdleExpiry) {
  SessionPoolConfig config;
  config.max_idle_age_micros = 10'000;  // 10 ms
  SessionPool pool(config);
  ASSERT_OK_AND_ASSIGN(auto session, pool.Acquire(uri_, params_));
  pool.Release(std::move(session));
  SleepForMicros(30'000);
  ASSERT_OK_AND_ASSIGN(auto fresh, pool.Acquire(uri_, params_));
  EXPECT_FALSE(fresh->recycled());
  EXPECT_EQ(pool.stats().expired.load(), 1u);
}

TEST_F(SessionPoolTest, MaxIdlePerHostBounded) {
  SessionPoolConfig config;
  config.max_idle_per_host = 2;
  SessionPool pool(config);
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(auto session, pool.Acquire(uri_, params_));
    sessions.push_back(std::move(session));
  }
  for (auto& session : sessions) pool.Release(std::move(session));
  EXPECT_EQ(pool.IdleCount(), 2u);
  EXPECT_EQ(pool.stats().discarded.load(), 2u);
}

TEST_F(SessionPoolTest, DrainedBucketsAreErased) {
  SessionPool pool;
  ASSERT_OK_AND_ASSIGN(auto session, pool.Acquire(uri_, params_));
  pool.Release(std::move(session));
  EXPECT_EQ(pool.BucketCount(), 1u);
  // Draining the bucket must erase it — the map cannot grow by one empty
  // vector per host:port ever contacted.
  ASSERT_OK_AND_ASSIGN(auto again, pool.Acquire(uri_, params_));
  EXPECT_EQ(pool.BucketCount(), 0u);
  pool.Release(std::move(again));
  EXPECT_EQ(pool.BucketCount(), 1u);
}

TEST_F(SessionPoolTest, ExpiredDrainAlsoErasesBucket) {
  SessionPoolConfig config;
  config.max_idle_age_micros = 10'000;  // 10 ms
  SessionPool pool(config);
  ASSERT_OK_AND_ASSIGN(auto session, pool.Acquire(uri_, params_));
  pool.Release(std::move(session));
  SleepForMicros(30'000);
  // The only idle session ages out during this acquire: the bucket is
  // drained by expiry, and must be gone afterwards.
  ASSERT_OK_AND_ASSIGN(auto fresh, pool.Acquire(uri_, params_));
  EXPECT_EQ(pool.BucketCount(), 0u);
}

TEST_F(SessionPoolTest, HitAndMissCounters) {
  SessionPool pool;
  // Cold pool: miss.
  ASSERT_OK_AND_ASSIGN(auto first, pool.Acquire(uri_, params_));
  EXPECT_EQ(pool.stats().acquire_misses.load(), 1u);
  EXPECT_EQ(pool.stats().acquire_hits.load(), 0u);
  pool.Release(std::move(first));
  // Warm pool: hit.
  ASSERT_OK_AND_ASSIGN(auto second, pool.Acquire(uri_, params_));
  EXPECT_EQ(pool.stats().acquire_hits.load(), 1u);
  EXPECT_EQ(pool.stats().acquire_misses.load(), 1u);
  // Keep-alive off: pooling is bypassed, neither hit nor miss.
  params_.keep_alive = false;
  ASSERT_OK_AND_ASSIGN(auto third, pool.Acquire(uri_, params_));
  EXPECT_EQ(pool.stats().acquire_hits.load(), 1u);
  EXPECT_EQ(pool.stats().acquire_misses.load(), 1u);
}

TEST_F(SessionPoolTest, BurstAcquireToOneHostCountsMisses) {
  // The parallel vectored dispatcher's pattern: N concurrent acquires to
  // one host against a cold pool — all misses — then N releases and a
  // second burst — all hits.
  SessionPool pool;
  constexpr int kBurst = 6;
  std::vector<std::unique_ptr<Session>> sessions(kBurst);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kBurst; ++i) {
    threads.emplace_back([&, i] {
      Result<std::unique_ptr<Session>> session = pool.Acquire(uri_, params_);
      if (session.ok()) {
        sessions[i] = std::move(*session);
      } else {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.stats().acquire_misses.load(), kBurst);
  for (auto& session : sessions) pool.Release(std::move(session));

  threads.clear();
  for (int i = 0; i < kBurst; ++i) {
    threads.emplace_back([&, i] {
      Result<std::unique_ptr<Session>> session = pool.Acquire(uri_, params_);
      if (session.ok()) {
        sessions[i] = std::move(*session);
      } else {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.stats().acquire_hits.load(), kBurst);
  EXPECT_EQ(pool.stats().acquire_misses.load(), kBurst);
}

TEST_F(SessionPoolTest, ClearDropsEverything) {
  SessionPool pool;
  ASSERT_OK_AND_ASSIGN(auto session, pool.Acquire(uri_, params_));
  pool.Release(std::move(session));
  pool.Clear();
  EXPECT_EQ(pool.IdleCount(), 0u);
}

TEST_F(SessionPoolTest, ConnectFailureIsError) {
  SessionPool pool;
  // Port 1 on loopback: nothing listens there.
  Uri dead = *Uri::Parse("http://127.0.0.1:1/f");
  Result<std::unique_ptr<Session>> result = pool.Acquire(dead, params_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConnectionFailed);
}

TEST_F(SessionPoolTest, ConcurrentAcquireReleaseStress) {
  SessionPool pool;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        Result<std::unique_ptr<Session>> session = pool.Acquire(uri_, params_);
        if (!session.ok()) {
          failures.fetch_add(1);
          continue;
        }
        pool.Release(std::move(*session));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The pool never grows beyond the peak concurrency.
  EXPECT_LE(pool.IdleCount(), 8u);
  EXPECT_EQ(pool.stats().connects.load() + pool.stats().recycled.load(),
            8u * 25u);
}

// ------------------------------------------------------------ HttpClient

class HttpClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = testing::StartStorageServer();
    server_.store->Put("/f", "payload");
    context_ = std::make_unique<Context>();
    client_ = std::make_unique<HttpClient>(context_.get());
  }

  TestStorageServer server_;
  std::unique_ptr<Context> context_;
  std::unique_ptr<HttpClient> client_;
  RequestParams params_;
};

TEST_F(HttpClientTest, StaleRecycledConnectionIsReplayedTransparently) {
  Uri uri = *Uri::Parse(server_.UrlFor("/f"));
  ASSERT_OK_AND_ASSIGN(auto first,
                       client_->Execute(uri, http::Method::kGet, params_));
  EXPECT_EQ(first.response.status_code, 200);
  EXPECT_EQ(context_->pool().IdleCount(), 1u);

  // Kill the pooled connection server-side by restarting the server on
  // the... simplest equivalent: stop the server, which closes it. Then
  // bring up a fresh server on the same port? Ports are ephemeral, so
  // instead make the server drop the next connection use: mark the
  // server down is wrong (new conns fail too). Instead: close the
  // server-side of the idle connection by stopping and restarting —
  // covered in integration tests. Here, validate the counter path: the
  // pooled session is alive, so the request recycles it.
  ASSERT_OK_AND_ASSIGN(auto second,
                       client_->Execute(uri, http::Method::kGet, params_));
  EXPECT_EQ(second.response.status_code, 200);
  EXPECT_EQ(context_->pool().stats().recycled.load(), 1u);
  EXPECT_EQ(server_.server->stats().connections_accepted.load(), 1u);
}

TEST_F(HttpClientTest, DeadPooledConnectionReplaysOnFreshOne) {
  // A server that reaps idle connections quickly: the pooled session
  // dies between requests, and the client must replay transparently.
  httpd::ServerConfig config;
  config.idle_timeout_micros = 80'000;
  testing::TestStorageServer server = testing::StartStorageServer(config);
  server.store->Put("/f", "still here");
  Uri uri = *Uri::Parse(server.UrlFor("/f"));

  ASSERT_OK_AND_ASSIGN(auto first,
                       client_->Execute(uri, http::Method::kGet, params_));
  EXPECT_EQ(first.response.status_code, 200);
  EXPECT_EQ(context_->pool().IdleCount(), 1u);

  // Wait for the server to close the idle keep-alive connection.
  SleepForMicros(250'000);

  // The pool hands out the dead session; Execute must detect the stale
  // connection (EOF before any response byte) and replay without error
  // and without consuming the retry budget.
  params_.max_retries = 0;
  ASSERT_OK_AND_ASSIGN(auto second,
                       client_->Execute(uri, http::Method::kGet, params_));
  EXPECT_EQ(second.response.status_code, 200);
  EXPECT_EQ(second.response.body, "still here");
  EXPECT_EQ(context_->SnapshotCounters().retries, 0u);
  // Two server-side connections total: the reaped one and the fresh one.
  EXPECT_EQ(server.server->stats().connections_accepted.load(), 2u);
}

TEST_F(HttpClientTest, FollowsRedirects) {
  auto router = std::make_shared<httpd::Router>();
  std::string target_url = server_.UrlFor("/f");
  router->Handle(http::Method::kGet, "/jump",
                 [target_url](const http::HttpRequest&,
                              http::HttpResponse* response) {
                   response->status_code = 302;
                   response->headers.Set("Location", target_url);
                 });
  ASSERT_OK_AND_ASSIGN(auto redirector, httpd::HttpServer::Start({}, router));
  Uri uri = *Uri::Parse(redirector->BaseUrl() + "/jump");
  ASSERT_OK_AND_ASSIGN(auto exchange,
                       client_->Execute(uri, http::Method::kGet, params_));
  EXPECT_EQ(exchange.response.status_code, 200);
  EXPECT_EQ(exchange.response.body, "payload");
  EXPECT_EQ(exchange.final_url.ToString(), target_url);
  EXPECT_EQ(context_->SnapshotCounters().redirects_followed, 1u);
  redirector->Stop();
}

TEST_F(HttpClientTest, RedirectLoopBounded) {
  auto router = std::make_shared<httpd::Router>();
  router->Handle(http::Method::kGet, "/loop",
                 [](const http::HttpRequest&, http::HttpResponse* response) {
                   response->status_code = 302;
                   response->headers.Set("Location", "/loop");
                 });
  ASSERT_OK_AND_ASSIGN(auto server, httpd::HttpServer::Start({}, router));
  Uri uri = *Uri::Parse(server->BaseUrl() + "/loop");
  params_.max_redirects = 5;
  Result<HttpClient::Exchange> result =
      client_->Execute(uri, http::Method::kGet, params_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kRedirectLoop);
  server->Stop();
}

TEST_F(HttpClientTest, RelativeRedirectResolved) {
  auto router = std::make_shared<httpd::Router>();
  router->Handle(http::Method::kGet, "/a/jump",
                 [](const http::HttpRequest&, http::HttpResponse* response) {
                   response->status_code = 307;
                   response->headers.Set("Location", "/a/target");
                 });
  router->Handle(http::Method::kGet, "/a/target",
                 [](const http::HttpRequest&, http::HttpResponse* response) {
                   response->status_code = 200;
                   response->body = "landed";
                 });
  ASSERT_OK_AND_ASSIGN(auto server, httpd::HttpServer::Start({}, router));
  Uri uri = *Uri::Parse(server->BaseUrl() + "/a/jump");
  ASSERT_OK_AND_ASSIGN(auto exchange,
                       client_->Execute(uri, http::Method::kGet, params_));
  EXPECT_EQ(exchange.response.body, "landed");
  server->Stop();
}

TEST_F(HttpClientTest, HttpStatusMapping) {
  EXPECT_TRUE(HttpStatusToStatus(200, "x").ok());
  EXPECT_TRUE(HttpStatusToStatus(206, "x").ok());
  EXPECT_EQ(HttpStatusToStatus(404, "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(HttpStatusToStatus(403, "x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(HttpStatusToStatus(416, "x").code(),
            StatusCode::kRangeNotSatisfiable);
  EXPECT_EQ(HttpStatusToStatus(500, "x").code(), StatusCode::kRemoteError);
  EXPECT_EQ(HttpStatusToStatus(501, "x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(HttpStatusToStatus(400, "x").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HttpClientTest, CountersTrackTraffic) {
  Uri uri = *Uri::Parse(server_.UrlFor("/f"));
  context_->ResetCounters();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(auto exchange,
                         client_->Execute(uri, http::Method::kGet, params_));
    EXPECT_EQ(exchange.response.status_code, 200);
  }
  IoCounters counters = context_->SnapshotCounters();
  EXPECT_EQ(counters.requests, 3u);
  EXPECT_EQ(counters.connections_opened, 1u);
  EXPECT_EQ(counters.connections_reused, 2u);
  EXPECT_GT(counters.bytes_read, 0u);
  EXPECT_GT(counters.bytes_written, 0u);
}

}  // namespace
}  // namespace core
}  // namespace davix
