#include <algorithm>
#include <atomic>

#include "common/rng.h"
#include "core/context.h"
#include "root/analysis_job.h"
#include "root/transport_adapters.h"
#include "root/tree_cache.h"
#include "root/tree_format.h"
#include "root/tree_reader.h"
#include "test_util.h"
#include "xrootd/xrd_server.h"

#include "gtest/gtest.h"

namespace davix {
namespace root {
namespace {

TreeSpec SmallSpec() {
  TreeSpec spec;
  spec.n_events = 1000;
  spec.events_per_basket = 100;
  spec.codec = compress::CodecType::kDlz;
  spec.branches = {{"id", 8}, {"pt", 4}, {"cells", 64}};
  return spec;
}

// ---------------------------------------------------------------- format

TEST(TreeFormatTest, DefaultSpecShape) {
  TreeSpec spec = TreeSpec::Default();
  EXPECT_EQ(spec.n_events, 12000u);
  EXPECT_GT(spec.BytesPerEvent(), 2000u);  // cells branch dominates
  EXPECT_EQ(spec.BasketCountPerBranch(), 48u);
}

TEST(TreeFormatTest, BuildParseRoundTrip) {
  TreeSpec spec = SmallSpec();
  std::string file = BuildTreeFile(spec, 42);
  ASSERT_OK_AND_ASSIGN(TreeIndex index, ParseTreeIndex(file));
  EXPECT_EQ(index.spec.n_events, spec.n_events);
  EXPECT_EQ(index.spec.events_per_basket, spec.events_per_basket);
  EXPECT_EQ(index.spec.codec, spec.codec);
  ASSERT_EQ(index.spec.branches.size(), spec.branches.size());
  for (size_t i = 0; i < spec.branches.size(); ++i) {
    EXPECT_EQ(index.spec.branches[i].name, spec.branches[i].name);
    EXPECT_EQ(index.spec.branches[i].bytes_per_event,
              spec.branches[i].bytes_per_event);
  }
  EXPECT_EQ(index.file_size, file.size());
  EXPECT_EQ(index.baskets.size(), spec.branches.size());
  EXPECT_EQ(index.baskets[0].size(), spec.BasketCountPerBranch());
}

TEST(TreeFormatTest, DeterministicForSameSeed) {
  TreeSpec spec = SmallSpec();
  EXPECT_EQ(BuildTreeFile(spec, 7), BuildTreeFile(spec, 7));
  EXPECT_NE(BuildTreeFile(spec, 7), BuildTreeFile(spec, 8));
}

TEST(TreeFormatTest, BasketsCoverDataRegionWithoutOverlap) {
  TreeSpec spec = SmallSpec();
  std::string file = BuildTreeFile(spec, 1);
  ASSERT_OK_AND_ASSIGN(TreeIndex index, ParseTreeIndex(file));
  // Collect all baskets, sort by offset, check contiguous coverage.
  std::vector<BasketInfo> all;
  for (const auto& branch : index.baskets) {
    all.insert(all.end(), branch.begin(), branch.end());
  }
  std::sort(all.begin(), all.end(),
            [](const BasketInfo& a, const BasketInfo& b) {
              return a.offset < b.offset;
            });
  uint64_t cursor = index.data_begin;
  for (const BasketInfo& basket : all) {
    EXPECT_EQ(basket.offset, cursor);
    cursor += basket.stored_length;
  }
  EXPECT_EQ(cursor, file.size());
}

TEST(TreeFormatTest, BasketsDecodeToSyntheticEvents) {
  TreeSpec spec = SmallSpec();
  uint64_t seed = 99;
  std::string file = BuildTreeFile(spec, seed);
  ASSERT_OK_AND_ASSIGN(TreeIndex index, ParseTreeIndex(file));
  // Decode basket (branch 1, row 3) and compare against the generator.
  const BasketInfo& info = index.baskets[1][3];
  ASSERT_OK_AND_ASSIGN(
      std::string raw,
      compress::Decompress(
          std::string_view(file).substr(info.offset, info.stored_length)));
  EXPECT_EQ(raw.size(), info.raw_length);
  uint32_t width = spec.branches[1].bytes_per_event;
  for (uint64_t e = 0; e < spec.events_per_basket; ++e) {
    uint64_t event = 3 * spec.events_per_basket + e;
    EXPECT_EQ(raw.substr(e * width, width),
              SyntheticEventBytes(spec, 1, event, seed))
        << "event " << event;
  }
}

TEST(TreeFormatTest, ParseRejectsCorruptHeaders) {
  TreeSpec spec = SmallSpec();
  std::string file = BuildTreeFile(spec, 1);
  EXPECT_FALSE(ParseTreeIndex("short").ok());
  std::string bad_magic = file;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseTreeIndex(bad_magic).ok());
  std::string bad_version = file;
  bad_version[4] = 9;
  EXPECT_FALSE(ParseTreeIndex(bad_version).ok());
}

// ---------------------------------------------------------------- reader

TEST(TreeReaderTest, OpensOverMemoryFile) {
  TreeSpec spec = SmallSpec();
  MemoryFile file(BuildTreeFile(spec, 5));
  ASSERT_OK_AND_ASSIGN(TreeReader reader, TreeReader::Open(&file));
  EXPECT_EQ(reader.spec().n_events, spec.n_events);
  ASSERT_OK_AND_ASSIGN(size_t branch, reader.BranchIndex("pt"));
  EXPECT_EQ(branch, 1u);
  EXPECT_FALSE(reader.BranchIndex("nope").ok());
}

// ----------------------------------------------------------------- cache

class TreeCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = SmallSpec();
    data_ = BuildTreeFile(spec_, 11);
    file_ = std::make_unique<MemoryFile>(data_);
    auto reader = TreeReader::Open(file_.get());
    ASSERT_TRUE(reader.ok());
    reader_ = std::make_unique<TreeReader>(std::move(*reader));
  }

  /// Reference basket bytes straight from the generator.
  std::string ExpectedBasket(size_t branch, uint64_t row) {
    std::string out;
    uint64_t first = row * spec_.events_per_basket;
    uint64_t last =
        std::min<uint64_t>(first + spec_.events_per_basket, spec_.n_events);
    for (uint64_t e = first; e < last; ++e) {
      out += SyntheticEventBytes(spec_, branch, e, 11);
    }
    return out;
  }

  TreeSpec spec_;
  std::string data_;
  std::unique_ptr<MemoryFile> file_;
  std::unique_ptr<TreeReader> reader_;
};

TEST_F(TreeCacheTest, ServesCorrectBaskets) {
  TreeCache cache(reader_.get(), {}, {});
  for (size_t b = 0; b < spec_.branches.size(); ++b) {
    for (uint64_t row = 0; row < spec_.BasketCountPerBranch(); ++row) {
      ASSERT_OK_AND_ASSIGN(auto basket, cache.GetBasket(b, row));
      EXPECT_EQ(*basket, ExpectedBasket(b, row)) << b << "," << row;
    }
  }
}

TEST_F(TreeCacheTest, VectoredReadsPerCluster) {
  TreeCacheConfig config;
  config.cluster_rows = 5;
  TreeCache cache(reader_.get(), {}, config);
  // Sequential pass over all rows, all branches.
  for (uint64_t row = 0; row < spec_.BasketCountPerBranch(); ++row) {
    for (size_t b = 0; b < spec_.branches.size(); ++b) {
      ASSERT_OK_AND_ASSIGN(auto basket, cache.GetBasket(b, row));
      EXPECT_EQ(basket->size(), ExpectedBasket(b, row).size());
    }
  }
  // 10 rows total / 5 per cluster = 2 vectored reads, each covering
  // 5 rows x 3 branches = 15 ranges.
  EXPECT_EQ(cache.stats().vector_reads, 2u);
  EXPECT_EQ(cache.stats().ranges_requested, 30u);
  EXPECT_EQ(cache.stats().single_reads, 0u);
}

TEST_F(TreeCacheTest, DisabledCacheReadsPerBasket) {
  TreeCacheConfig config;
  config.enabled = false;
  TreeCache cache(reader_.get(), {}, config);
  for (uint64_t row = 0; row < 4; ++row) {
    ASSERT_OK_AND_ASSIGN(auto basket, cache.GetBasket(0, row));
    EXPECT_EQ(*basket, ExpectedBasket(0, row));
  }
  EXPECT_EQ(cache.stats().single_reads, 4u);
  EXPECT_EQ(cache.stats().vector_reads, 0u);
}

TEST_F(TreeCacheTest, InactiveBranchFallsBackToSingleRead) {
  TreeCacheConfig config;
  config.cluster_rows = 2;
  TreeCache cache(reader_.get(), {0}, config);  // only branch 0 active
  ASSERT_OK_AND_ASSIGN(auto active, cache.GetBasket(0, 0));
  EXPECT_EQ(*active, ExpectedBasket(0, 0));
  ASSERT_OK_AND_ASSIGN(auto inactive, cache.GetBasket(2, 0));
  EXPECT_EQ(*inactive, ExpectedBasket(2, 0));
  EXPECT_EQ(cache.stats().single_reads, 1u);
}

TEST_F(TreeCacheTest, OutOfRangeRejected) {
  TreeCache cache(reader_.get(), {}, {});
  EXPECT_FALSE(cache.GetBasket(99, 0).ok());
  EXPECT_FALSE(cache.GetBasket(0, 99).ok());
}

// ------------------------------------------------------------- analysis

TEST(AnalysisTest, LocalRunProcessesAllEvents) {
  TreeSpec spec = SmallSpec();
  MemoryFile file(BuildTreeFile(spec, 3));
  AnalysisConfig config;
  config.compute_iterations_per_event = 10;
  ASSERT_OK_AND_ASSIGN(AnalysisReport report, RunAnalysis(&file, config));
  EXPECT_EQ(report.events_processed, spec.n_events);
  EXPECT_GT(report.physics_sum, 0);
  EXPECT_GT(report.io.bytes_fetched, 0u);
}

TEST(AnalysisTest, FractionLimitsEvents) {
  TreeSpec spec = SmallSpec();
  MemoryFile file(BuildTreeFile(spec, 3));
  AnalysisConfig config;
  config.fraction = 0.25;
  config.compute_iterations_per_event = 0;
  ASSERT_OK_AND_ASSIGN(AnalysisReport report, RunAnalysis(&file, config));
  EXPECT_EQ(report.events_processed, spec.n_events / 4);
}

TEST(AnalysisTest, DeterministicAggregate) {
  TreeSpec spec = SmallSpec();
  MemoryFile a(BuildTreeFile(spec, 3));
  MemoryFile b(BuildTreeFile(spec, 3));
  AnalysisConfig config;
  config.compute_iterations_per_event = 5;
  ASSERT_OK_AND_ASSIGN(AnalysisReport ra, RunAnalysis(&a, config));
  ASSERT_OK_AND_ASSIGN(AnalysisReport rb, RunAnalysis(&b, config));
  EXPECT_EQ(ra.physics_sum, rb.physics_sum);
}

TEST(AnalysisTest, SelectedBranchesOnly) {
  TreeSpec spec = SmallSpec();
  MemoryFile file(BuildTreeFile(spec, 3));
  AnalysisConfig config;
  config.branches = {"pt"};
  config.compute_iterations_per_event = 0;
  ASSERT_OK_AND_ASSIGN(AnalysisReport report, RunAnalysis(&file, config));
  // Only the pt branch's baskets were fetched (plus header/index reads).
  AnalysisConfig all_config;
  all_config.compute_iterations_per_event = 0;
  MemoryFile file2(BuildTreeFile(spec, 3));
  ASSERT_OK_AND_ASSIGN(AnalysisReport all, RunAnalysis(&file2, all_config));
  EXPECT_LT(report.io.bytes_fetched, all.io.bytes_fetched);
  EXPECT_FALSE(RunAnalysis(&file, [] {
                 AnalysisConfig c;
                 c.branches = {"missing-branch"};
                 return c;
               }())
                   .ok());
}

// ------------------------------------------- cross-transport equivalence

class TransportEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = SmallSpec();
    tree_bytes_ = BuildTreeFile(spec_, 77);

    // HTTP server.
    http_server_ = testing::StartStorageServer();
    http_server_.store->Put("/tree.rnt", tree_bytes_);

    // xrootd server sharing the same store.
    auto xrd = xrootd::XrdServer::Start({}, http_server_.store);
    ASSERT_TRUE(xrd.ok());
    xrd_server_ = std::move(*xrd);

    context_ = std::make_unique<core::Context>();
  }

  AnalysisConfig Config() {
    AnalysisConfig config;
    config.compute_iterations_per_event = 2;
    config.cache.cluster_rows = 3;
    return config;
  }

  TreeSpec spec_;
  std::string tree_bytes_;
  testing::TestStorageServer http_server_;
  std::unique_ptr<xrootd::XrdServer> xrd_server_;
  std::unique_ptr<core::Context> context_;
};

TEST_F(TransportEquivalenceTest, LocalDavixXrootdAgree) {
  // Local truth.
  MemoryFile local(tree_bytes_);
  ASSERT_OK_AND_ASSIGN(AnalysisReport local_report,
                       RunAnalysis(&local, Config()));

  // davix / HTTP.
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  ASSERT_OK_AND_ASSIGN(
      auto davix_file,
      DavixRandomAccessFile::Open(
          context_.get(), http_server_.UrlFor("/tree.rnt"), params));
  ASSERT_OK_AND_ASSIGN(AnalysisReport davix_report,
                       RunAnalysis(davix_file.get(), Config()));

  // xrootd.
  ASSERT_OK_AND_ASSIGN(auto xrd_client, xrootd::XrdClient::Connect(
                                            "127.0.0.1", xrd_server_->port()));
  ASSERT_OK(xrd_client->Login());
  ASSERT_OK_AND_ASSIGN(auto xrd_file,
                       XrdRandomAccessFile::Open(xrd_client.get(),
                                                 "/tree.rnt"));
  ASSERT_OK_AND_ASSIGN(AnalysisReport xrd_report,
                       RunAnalysis(xrd_file.get(), Config()));

  EXPECT_EQ(local_report.physics_sum, davix_report.physics_sum);
  EXPECT_EQ(local_report.physics_sum, xrd_report.physics_sum);
  EXPECT_EQ(davix_report.events_processed, spec_.n_events);
  EXPECT_EQ(xrd_report.events_processed, spec_.n_events);
}

TEST_F(TransportEquivalenceTest, AsyncPrefetchPreservesResults) {
  ASSERT_OK_AND_ASSIGN(auto xrd_client, xrootd::XrdClient::Connect(
                                            "127.0.0.1", xrd_server_->port()));
  ASSERT_OK(xrd_client->Login());
  ASSERT_OK_AND_ASSIGN(auto xrd_file,
                       XrdRandomAccessFile::Open(xrd_client.get(),
                                                 "/tree.rnt"));
  AnalysisConfig sync_config = Config();
  AnalysisConfig async_config = Config();
  async_config.cache.async_prefetch = true;
  async_config.cache.prefetch_window_bytes = 0;  // whole next cluster

  ASSERT_OK_AND_ASSIGN(AnalysisReport sync_report,
                       RunAnalysis(xrd_file.get(), sync_config));
  ASSERT_OK_AND_ASSIGN(AnalysisReport async_report,
                       RunAnalysis(xrd_file.get(), async_config));
  EXPECT_EQ(sync_report.physics_sum, async_report.physics_sum);
  EXPECT_GT(async_report.io.async_prefetches, 0u);
}

TEST_F(TransportEquivalenceTest, PrefetchWindowCapPreservesResults) {
  ASSERT_OK_AND_ASSIGN(auto xrd_client, xrootd::XrdClient::Connect(
                                            "127.0.0.1", xrd_server_->port()));
  ASSERT_OK(xrd_client->Login());
  ASSERT_OK_AND_ASSIGN(auto xrd_file,
                       XrdRandomAccessFile::Open(xrd_client.get(),
                                                 "/tree.rnt"));
  MemoryFile local(tree_bytes_);
  ASSERT_OK_AND_ASSIGN(AnalysisReport truth, RunAnalysis(&local, Config()));

  AnalysisConfig config = Config();
  config.cache.async_prefetch = true;
  config.cache.prefetch_window_bytes = 4096;  // tiny window: partial prefetch
  ASSERT_OK_AND_ASSIGN(AnalysisReport report,
                       RunAnalysis(xrd_file.get(), config));
  EXPECT_EQ(report.physics_sum, truth.physics_sum);
}

TEST_F(TransportEquivalenceTest, AdaptiveLatchGatesPrefetchByLatency) {
  ASSERT_OK_AND_ASSIGN(auto xrd_client, xrootd::XrdClient::Connect(
                                            "127.0.0.1", xrd_server_->port()));
  ASSERT_OK(xrd_client->Login());
  ASSERT_OK_AND_ASSIGN(auto xrd_file,
                       XrdRandomAccessFile::Open(xrd_client.get(),
                                                 "/tree.rnt"));
  // Huge threshold: loopback fetches never cross it -> no prefetch.
  AnalysisConfig gated = Config();
  gated.cache.async_prefetch = true;
  gated.cache.prefetch_latency_threshold_micros = 60'000'000;
  ASSERT_OK_AND_ASSIGN(AnalysisReport gated_report,
                       RunAnalysis(xrd_file.get(), gated));
  EXPECT_EQ(gated_report.io.async_prefetches, 0u);

  // Zero threshold: unconditional -> prefetches happen.
  AnalysisConfig open = Config();
  open.cache.async_prefetch = true;
  open.cache.prefetch_latency_threshold_micros = 0;
  ASSERT_OK_AND_ASSIGN(AnalysisReport open_report,
                       RunAnalysis(xrd_file.get(), open));
  EXPECT_GT(open_report.io.async_prefetches, 0u);
  EXPECT_EQ(gated_report.physics_sum, open_report.physics_sum);
}

TEST_F(TransportEquivalenceTest, NaiveModeAgreesButCostsMoreReads) {
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  ASSERT_OK_AND_ASSIGN(
      auto davix_file,
      DavixRandomAccessFile::Open(
          context_.get(), http_server_.UrlFor("/tree.rnt"), params));

  MemoryFile local(tree_bytes_);
  ASSERT_OK_AND_ASSIGN(AnalysisReport truth, RunAnalysis(&local, Config()));

  AnalysisConfig naive = Config();
  naive.cache.enabled = false;
  ASSERT_OK_AND_ASSIGN(AnalysisReport report,
                       RunAnalysis(davix_file.get(), naive));
  EXPECT_EQ(report.physics_sum, truth.physics_sum);
  // 10 rows x 3 branches = 30 individual reads vs 4 vectored ones.
  EXPECT_EQ(report.io.single_reads, 30u);
}

}  // namespace
}  // namespace root
}  // namespace davix
