#include <algorithm>
#include <atomic>
#include <limits>
#include <set>
#include <thread>

#include "common/base64.h"
#include "common/blocking_queue.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/uri.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, FactoryAndAccessors) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "not_found: missing thing");
}

TEST(StatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::Timeout("t").IsRetryable());
  EXPECT_TRUE(Status::ConnectionFailed("c").IsRetryable());
  EXPECT_TRUE(Status::ConnectionReset("r").IsRetryable());
  EXPECT_TRUE(Status::RemoteError("e").IsRetryable());
  EXPECT_FALSE(Status::NotFound("n").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("i").IsRetryable());
  EXPECT_FALSE(Status::Corruption("x").IsRetryable());
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::IoError("disk on fire").WithContext("reading basket");
  EXPECT_EQ(st.message(), "reading basket: disk on fire");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // OK statuses stay OK.
  EXPECT_TRUE(Status::OK().WithContext("nope").ok());
}

TEST(StatusTest, EveryCodeHasName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_FALSE(StatusCodeName(static_cast<StatusCode>(c)).empty());
  }
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_EQ(ok_result.ValueOr(7), 42);

  Result<int> err_result(Status::Timeout("slow"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(err_result.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken.size(), 1000u);
}

// ----------------------------------------------------------- string_util

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, SplitAndTrimDropsEmpties) {
  EXPECT_EQ(SplitAndTrim(" a , , b ", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi \t\r\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringUtilTest, CaseInsensitiveEquality) {
  EXPECT_TRUE(EqualsIgnoreCase("Content-Length", "content-length"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, ParseUint64Bounds) {
  EXPECT_EQ(ParseUint64("0"), 0u);
  EXPECT_EQ(ParseUint64("18446744073709551615"),
            18446744073709551615ull);
  EXPECT_FALSE(ParseUint64("18446744073709551616"));  // overflow
  EXPECT_FALSE(ParseUint64(""));
  EXPECT_FALSE(ParseUint64("-1"));
  EXPECT_FALSE(ParseUint64("12x"));
  EXPECT_FALSE(ParseUint64("+3"));
}

TEST(StringUtilTest, ParseInt64SignsAndBounds) {
  EXPECT_EQ(ParseInt64("-9223372036854775808"),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(ParseInt64("9223372036854775807"),
            std::numeric_limits<int64_t>::max());
  EXPECT_FALSE(ParseInt64("9223372036854775808"));
  EXPECT_EQ(ParseInt64("+17"), 17);
  EXPECT_FALSE(ParseInt64(""));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(312), "312 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(StringUtilTest, HexEncode) {
  EXPECT_EQ(HexEncode(std::string("\x00\xff\x10", 3)), "00ff10");
  EXPECT_EQ(HexEncode(""), "");
}

// ------------------------------------------------------------------- Uri

TEST(UriTest, ParsesFullUrl) {
  ASSERT_OK_AND_ASSIGN(
      Uri uri, Uri::Parse("http://user@host.cern.ch:8080/a/b%20c?x=1#frag"));
  EXPECT_EQ(uri.scheme(), "http");
  EXPECT_EQ(uri.userinfo(), "user");
  EXPECT_EQ(uri.host(), "host.cern.ch");
  EXPECT_EQ(uri.port(), 8080);
  EXPECT_TRUE(uri.has_explicit_port());
  EXPECT_EQ(uri.path(), "/a/b%20c");
  EXPECT_EQ(uri.query(), "x=1");
  EXPECT_EQ(uri.fragment(), "frag");
}

TEST(UriTest, DefaultPorts) {
  EXPECT_EQ(Uri::Parse("http://h/")->port(), 80);
  EXPECT_EQ(Uri::Parse("https://h/")->port(), 443);
  EXPECT_EQ(Uri::Parse("dav://h/")->port(), 80);
  EXPECT_EQ(Uri::Parse("davs://h/")->port(), 443);
  EXPECT_EQ(Uri::Parse("root://h/")->port(), 1094);
}

TEST(UriTest, EmptyPathNormalisesToSlash) {
  ASSERT_OK_AND_ASSIGN(Uri uri, Uri::Parse("http://host"));
  EXPECT_EQ(uri.path(), "/");
  EXPECT_EQ(uri.PathWithQuery(), "/");
}

TEST(UriTest, QueryWithoutPath) {
  ASSERT_OK_AND_ASSIGN(Uri uri, Uri::Parse("http://host?a=b"));
  EXPECT_EQ(uri.path(), "/");
  EXPECT_EQ(uri.query(), "a=b");
}

TEST(UriTest, RejectsMalformed) {
  EXPECT_FALSE(Uri::Parse("").ok());
  EXPECT_FALSE(Uri::Parse("no-scheme/path").ok());
  EXPECT_FALSE(Uri::Parse("://host/").ok());
  EXPECT_FALSE(Uri::Parse("http:///path").ok());
  EXPECT_FALSE(Uri::Parse("http://host:0/").ok());
  EXPECT_FALSE(Uri::Parse("http://host:99999/").ok());
  EXPECT_FALSE(Uri::Parse("http://host:12ab/").ok());
  EXPECT_FALSE(Uri::Parse("1http://host/").ok());
}

TEST(UriTest, RoundTripStable) {
  const char* cases[] = {
      "http://h/",
      "http://h:81/p",
      "https://a.b.c/x/y/z?q=1&r=2",
      "root://server:1094/store/file.root",
      "http://u:p@h/secret#f",
  };
  for (const char* url : cases) {
    ASSERT_OK_AND_ASSIGN(Uri first, Uri::Parse(url));
    ASSERT_OK_AND_ASSIGN(Uri second, Uri::Parse(first.ToString()));
    EXPECT_EQ(first.ToString(), second.ToString()) << url;
  }
}

TEST(UriTest, HostIsLowercasedSchemeToo) {
  ASSERT_OK_AND_ASSIGN(Uri uri, Uri::Parse("HTTP://ExAmPlE.COM/Path"));
  EXPECT_EQ(uri.scheme(), "http");
  EXPECT_EQ(uri.host(), "example.com");
  EXPECT_EQ(uri.path(), "/Path");  // path case preserved
}

TEST(UriTest, WithPathReplacesPathAndQuery) {
  ASSERT_OK_AND_ASSIGN(Uri uri, Uri::Parse("http://h:81/old?x=1"));
  Uri next = uri.WithPath("/new/path?y=2");
  EXPECT_EQ(next.ToString(), "http://h:81/new/path?y=2");
  Uri bare = uri.WithPath("plain");
  EXPECT_EQ(bare.path(), "/plain");
  EXPECT_TRUE(bare.query().empty());
}

TEST(UriTest, ResolveAbsoluteUrl) {
  ASSERT_OK_AND_ASSIGN(Uri base, Uri::Parse("http://h/a/b"));
  ASSERT_OK_AND_ASSIGN(Uri resolved, base.Resolve("http://other:99/c"));
  EXPECT_EQ(resolved.ToString(), "http://other:99/c");
}

TEST(UriTest, ResolveAbsolutePath) {
  ASSERT_OK_AND_ASSIGN(Uri base, Uri::Parse("http://h:8080/a/b?q=1"));
  ASSERT_OK_AND_ASSIGN(Uri resolved, base.Resolve("/c/d"));
  EXPECT_EQ(resolved.ToString(), "http://h:8080/c/d");
}

TEST(UriTest, ResolveRelativePath) {
  ASSERT_OK_AND_ASSIGN(Uri base, Uri::Parse("http://h/a/b"));
  ASSERT_OK_AND_ASSIGN(Uri resolved, base.Resolve("sibling"));
  EXPECT_EQ(resolved.path(), "/a/sibling");
}

TEST(UriTest, HostPortKey) {
  EXPECT_EQ(Uri::Parse("http://h/x")->HostPortKey(), "h:80");
  EXPECT_EQ(Uri::Parse("http://h:8080/x")->HostPortKey(), "h:8080");
}

TEST(UrlCodecTest, EncodePath) {
  EXPECT_EQ(UrlEncodePath("/a b/c"), "/a%20b/c");
  EXPECT_EQ(UrlEncodePath("/plain-path_1.2~x/"), "/plain-path_1.2~x/");
}

TEST(UrlCodecTest, DecodeErrors) {
  EXPECT_FALSE(UrlDecode("%2").ok());
  EXPECT_FALSE(UrlDecode("%zz").ok());
  ASSERT_OK_AND_ASSIGN(std::string decoded, UrlDecode("/a%20b+c"));
  EXPECT_EQ(decoded, "/a b c");
}

// Property: encode→decode is identity for any path bytes.
class UrlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UrlRoundTripTest, EncodeDecodeIdentity) {
  Rng rng(GetParam());
  std::string path = "/";
  size_t len = 1 + rng.Below(60);
  for (size_t i = 0; i < len; ++i) {
    path.push_back(static_cast<char>(rng.Below(256)));
  }
  ASSERT_OK_AND_ASSIGN(std::string decoded, UrlDecode(UrlEncodePath(path)));
  // '+' decodes to space, so exclude inputs containing '+'.
  if (path.find('+') == std::string::npos) {
    EXPECT_EQ(decoded, path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UrlRoundTripTest,
                         ::testing::Range<uint64_t>(1, 33));

// ---------------------------------------------------------------- base64

TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(Base64Encode(""), "");
  EXPECT_EQ(Base64Encode("f"), "Zg==");
  EXPECT_EQ(Base64Encode("fo"), "Zm8=");
  EXPECT_EQ(Base64Encode("foo"), "Zm9v");
  EXPECT_EQ(Base64Encode("foob"), "Zm9vYg==");
  EXPECT_EQ(Base64Encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, DecodeRejectsGarbage) {
  EXPECT_FALSE(Base64Decode("a").ok());     // length 1 mod 4
  EXPECT_FALSE(Base64Decode("ab!d").ok());  // bad character
  ASSERT_OK_AND_ASSIGN(std::string ok, Base64Decode("Zm9v"));
  EXPECT_EQ(ok, "foo");
  // Missing padding tolerated.
  ASSERT_OK_AND_ASSIGN(std::string nopad, Base64Decode("Zm8"));
  EXPECT_EQ(nopad, "fo");
}

class Base64RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Base64RoundTripTest, EncodeDecodeIdentity) {
  Rng rng(GetParam());
  std::string data = rng.Bytes(rng.Below(200));
  ASSERT_OK_AND_ASSIGN(std::string decoded, Base64Decode(Base64Encode(data)));
  EXPECT_EQ(decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Base64RoundTripTest,
                         ::testing::Range<uint64_t>(1, 33));

// -------------------------------------------------------------- checksum

TEST(ChecksumTest, Crc32KnownVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(ChecksumTest, Crc32Seeded) {
  // Chained CRC equals whole-buffer CRC.
  std::string data = "hello, world";
  uint32_t whole = Crc32(data);
  uint32_t part = Crc32(data.substr(0, 5));
  uint32_t chained = Crc32(data.substr(5), part);
  EXPECT_EQ(chained, whole);
}

TEST(ChecksumTest, Md5KnownVectors) {
  EXPECT_EQ(Md5::HexDigest(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::HexDigest("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::HexDigest("message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(
      Md5::HexDigest("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                     "0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(ChecksumTest, Md5IncrementalMatchesOneShot) {
  Rng rng(7);
  std::string data = rng.Bytes(10000);
  Md5 incremental;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t chunk = 1 + rng.Below(997);
    chunk = std::min(chunk, data.size() - pos);
    incremental.Update(std::string_view(data).substr(pos, chunk));
    pos += chunk;
  }
  auto digest = incremental.Digest();
  EXPECT_EQ(HexEncode(std::string_view(
                reinterpret_cast<char*>(digest.data()), digest.size())),
            Md5::HexDigest(data));
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BytesLength) {
  Rng rng(5);
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 100u}) {
    EXPECT_EQ(rng.Bytes(n).size(), n);
  }
}

TEST(RngTest, CompressibleBytesAreCompressible) {
  Rng rng(11);
  std::string data = rng.CompressibleBytes(4096);
  EXPECT_EQ(data.size(), 4096u);
  // Count distinct bytes: should be far fewer than random.
  std::set<char> distinct(data.begin(), data.end());
  EXPECT_LT(distinct.size(), 64u);
}

// ----------------------------------------------------------------- stats

TEST(SampleStatsTest, Moments) {
  SampleStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Stddev(), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_EQ(stats.count(), 8u);
}

TEST(SampleStatsTest, Percentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) stats.Add(i);
  EXPECT_NEAR(stats.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(stats.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(stats.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(stats.Percentile(90), 90.1, 0.2);
}

TEST(SampleStatsTest, EmptyIsZero) {
  SampleStats stats;
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Stddev(), 0.0);
  EXPECT_EQ(stats.Percentile(50), 0.0);
}

TEST(IoCountersTest, ToStringContainsFields) {
  IoCounters counters;
  counters.requests = 3;
  counters.vector_queries = 2;
  std::string s = counters.ToString();
  EXPECT_NE(s.find("requests=3"), std::string::npos);
  EXPECT_NE(s.find("vector_queries=2"), std::string::npos);
}

// ----------------------------------------------------- queue/thread pool

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  for (int i = 0; i < 10; ++i) queue.Push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Close();
  EXPECT_FALSE(queue.Push(2));
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BlockingQueueTest, CloseWakesBlockedConsumer) {
  BlockingQueue<int> queue;
  std::thread consumer([&] { EXPECT_FALSE(queue.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&] { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, TaskCountAccounting) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_submitted(), 0u);
  EXPECT_EQ(pool.tasks_executed(), 0u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(pool.Submit([] {}));
  }
  EXPECT_EQ(pool.tasks_submitted(), 50u);
  pool.Shutdown();
  EXPECT_EQ(pool.tasks_executed(), 50u);
  // Rejected submissions are not counted.
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_EQ(pool.tasks_submitted(), 50u);
}

TEST(ParallelForTest, CoversAllIndicesOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(), 8, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolDegradesToSerial) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, 8, [&](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, 4, [](size_t) { FAIL(); });
}

TEST(ParallelForTest, NoRawThreadsSpawned) {
  // All concurrency comes from the pool: the helpers (parallelism - 1 of
  // them) are pool tasks, and the caller participates directly.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  ParallelFor(&pool, 64, 4, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.tasks_submitted(), 3u);
}

TEST(ParallelForTest, CompletesWhenPoolIsSaturated) {
  // One worker, blocked by an unrelated long task: the caller's own
  // claim loop must still finish every index without waiting for the
  // helper to be scheduled.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> ran{0};
  ParallelFor(&pool, 32, 4, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
  release.store(true);
}

TEST(ParallelForTest, NestedUseFromPoolThreadsDoesNotDeadlock) {
  // Outer parallel-for runs on the pool; each outer index launches an
  // inner parallel-for on the same pool. The caller-participates design
  // guarantees progress even though the pool (2 threads) is far smaller
  // than the total demand.
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  ParallelFor(&pool, 4, 4, [&](size_t) {
    ParallelFor(&pool, 8, 4, [&](size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(ParallelForCancellableTest, AllTrueRunsEverythingAndReturnsTrue) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(123);
  EXPECT_TRUE(ParallelForCancellable(&pool, hits.size(), 8, [&](size_t i) {
    hits[i].fetch_add(1);
    return true;
  }));
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForCancellableTest, FalseStopsSchedulingRemainingIndices) {
  // With parallelism 1 the semantics are exact: everything after the
  // failing index is skipped.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_FALSE(ParallelForCancellable(&pool, 100, 1, [&](size_t i) {
    ran.fetch_add(1);
    return i < 10;
  }));
  EXPECT_EQ(ran.load(), 11);
}

TEST(ParallelForCancellableTest, ConcurrentCancelBoundsWorkPerExecutor) {
  // Every call fails, so each executor (the caller plus up to 3 pool
  // helpers) cancels after its first claimed index: at most
  // `parallelism` of the 10k indices ever run, whatever the
  // interleaving.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_FALSE(ParallelForCancellable(&pool, 10'000, 4, [&](size_t) {
    ran.fetch_add(1);
    return false;
  }));
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 4);
}

TEST(ParallelForCancellableTest, InFlightCallsRunToCompletion) {
  // A cancellation must not tear down calls already claimed: their
  // effects stay visible.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_FALSE(ParallelForCancellable(&pool, 64, 4, [&](size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    completed.fetch_add(1);
    return i != 0;  // index 0 cancels
  }));
  // Everything that ran finished its body (no partial counts possible
  // here by construction; this is the run-to-completion contract).
  EXPECT_GE(completed.load(), 1);
}

TEST(ParallelForCancellableTest, NestedCancellationDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> outer_ran{0};
  EXPECT_FALSE(ParallelForCancellable(&pool, 4, 4, [&](size_t) {
    outer_ran.fetch_add(1);
    return ParallelForCancellable(&pool, 8, 4,
                                  [&](size_t i) { return i < 3; });
  }));
  EXPECT_GE(outer_ran.load(), 1);
}

TEST(ParallelForCancellableTest, ZeroItemsIsVacuouslyTrue) {
  ThreadPool pool(2);
  EXPECT_TRUE(ParallelForCancellable(&pool, 0, 4, [](size_t) {
    []() { FAIL(); }();
    return false;
  }));
}

}  // namespace
}  // namespace davix
