// Conformance battery of the framed mux transport (muxhttp/frame.h +
// core/mux_transport.h): wire-format golden vectors, the interleaved
// demux state machine, the stream-error vs connection-error split, and
// the client transport's backpressure / deadline / circuit-breaker
// behaviour through the HttpClient seam.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/http_client.h"
#include "httpd/dav_handler.h"
#include "muxhttp/mux.h"
#include "net/byte_source.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace muxhttp {
namespace {

// --- wire format -----------------------------------------------------------

TEST(MuxFrameTest, GoldenVectorLayout) {
  // u32 id LE | u8 type | u8 flags | u32 length LE | payload.
  std::string wire =
      SerializeMuxFrame(0x01020304, MuxFrameType::kData, kMuxFlagEndStream,
                        "hi");
  const unsigned char expected[] = {0x04, 0x03, 0x02, 0x01,  // stream id
                                    0x02,                    // DATA
                                    0x01,                    // END_STREAM
                                    0x02, 0x00, 0x00, 0x00,  // length
                                    'h',  'i'};
  ASSERT_EQ(wire.size(), sizeof(expected));
  EXPECT_EQ(wire, std::string(reinterpret_cast<const char*>(expected),
                              sizeof(expected)));
}

TEST(MuxFrameTest, RoundTripThroughStringSource) {
  std::string wire = SerializeMuxFrame(42, MuxFrameType::kHeaders, 0,
                                       "payload-bytes");
  net::StringSource source(wire);
  net::BufferedReader reader(&source);
  ASSERT_OK_AND_ASSIGN(MuxFrame frame, ReadMuxFrame(&reader));
  EXPECT_EQ(frame.stream_id, 42u);
  EXPECT_EQ(frame.type, MuxFrameType::kHeaders);
  EXPECT_FALSE(frame.end_stream());
  EXPECT_EQ(frame.payload, "payload-bytes");
}

TEST(MuxFrameTest, RejectsZeroStreamId) {
  std::string wire = SerializeMuxFrame(1, MuxFrameType::kData, 0, "x");
  wire[0] = wire[1] = wire[2] = wire[3] = 0;
  net::StringSource source(wire);
  net::BufferedReader reader(&source);
  Result<MuxFrame> result = ReadMuxFrame(&reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kProtocolError);
}

TEST(MuxFrameTest, RejectsUnknownTypeAndFlags) {
  std::string bad_type = SerializeMuxFrame(1, MuxFrameType::kData, 0, "");
  bad_type[4] = 9;
  net::StringSource source1(bad_type);
  net::BufferedReader reader1(&source1);
  EXPECT_EQ(ReadMuxFrame(&reader1).status().code(),
            StatusCode::kProtocolError);

  std::string bad_flags = SerializeMuxFrame(1, MuxFrameType::kData, 0, "");
  bad_flags[5] = 0x40;
  net::StringSource source2(bad_flags);
  net::BufferedReader reader2(&source2);
  EXPECT_EQ(ReadMuxFrame(&reader2).status().code(),
            StatusCode::kProtocolError);
}

TEST(MuxFrameTest, OversizedLengthFailsWithoutReadingPayload) {
  // A header declaring 4 GiB of payload, followed by NO payload bytes:
  // the decoder must reject on the declared length alone. Seeing
  // kProtocolError (not kConnectionReset-on-EOF) proves it never tried
  // to consume the phantom payload.
  std::string wire = SerializeMuxFrame(1, MuxFrameType::kData, 0, "");
  wire[6] = wire[7] = wire[8] = wire[9] = static_cast<char>(0xFF);
  net::StringSource source(wire);
  net::BufferedReader reader(&source);
  Result<MuxFrame> result = ReadMuxFrame(&reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kProtocolError);
}

TEST(MuxFrameTest, RstPayloadRoundTripAndStatusMapping) {
  ASSERT_OK_AND_ASSIGN(
      MuxRstInfo rst,
      ParseMuxRstPayload(MakeRstPayload(MuxRstCode::kRefusedStream, "busy")));
  EXPECT_EQ(rst.code, MuxRstCode::kRefusedStream);
  EXPECT_EQ(rst.message, "busy");

  EXPECT_EQ(RstToStatus({MuxRstCode::kRefusedStream, "x"}).code(),
            StatusCode::kConnectionFailed);  // retryable, like a fast-fail
  EXPECT_EQ(RstToStatus({MuxRstCode::kInternalError, "x"}).code(),
            StatusCode::kRemoteError);
  EXPECT_EQ(RstToStatus({MuxRstCode::kCancelled, "x"}).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(RstToStatus({MuxRstCode::kProtocolError, "x"}).code(),
            StatusCode::kProtocolError);
  EXPECT_FALSE(ParseMuxRstPayload("").ok());
}

TEST(MuxFrameTest, FrameMessageChunksBodyAndFlagsLastFrame) {
  Rng rng(11);
  std::string body = rng.Bytes(150'000);
  std::vector<MuxFrame> frames = FrameMessage(7, "HEAD", body, 64 * 1024);
  ASSERT_EQ(frames.size(), 4u);  // HEADERS + ceil(150k / 64k) DATA
  EXPECT_EQ(frames[0].type, MuxFrameType::kHeaders);
  EXPECT_EQ(frames[0].payload, "HEAD");
  EXPECT_FALSE(frames[0].end_stream());
  std::string reassembled;
  for (size_t i = 1; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].type, MuxFrameType::kData);
    EXPECT_EQ(frames[i].stream_id, 7u);
    EXPECT_EQ(frames[i].end_stream(), i + 1 == frames.size());
    reassembled += frames[i].payload;
  }
  EXPECT_EQ(reassembled, body);

  std::vector<MuxFrame> headers_only = FrameMessage(9, "HEAD", "");
  ASSERT_EQ(headers_only.size(), 1u);
  EXPECT_TRUE(headers_only[0].end_stream());
}

// --- demux state machine ---------------------------------------------------

std::string ResponseHead(int code, size_t content_length) {
  http::HttpResponse response;
  response.status_code = code;
  return response.SerializeHead(content_length);
}

TEST(MuxAssemblerTest, InterleavedStreamsDeliverIndependently) {
  MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kResponse);
  assembler.ExpectStream(1, false);
  assembler.ExpectStream(3, false);

  auto feed = [&](MuxFrame frame) {
    auto event = assembler.OnFrame(std::move(frame));
    EXPECT_TRUE(event.ok()) << event.status().ToString();
    return std::move(*event);
  };

  // Heads for both streams, then DATA interleaved; stream 1 finishes
  // while stream 3 is still mid-body.
  EXPECT_FALSE(feed({1, MuxFrameType::kHeaders, 0, ResponseHead(200, 6)})
                   .has_value());
  EXPECT_FALSE(feed({3, MuxFrameType::kHeaders, 0, ResponseHead(206, 8)})
                   .has_value());
  EXPECT_FALSE(feed({3, MuxFrameType::kData, 0, "part"}).has_value());
  auto one = feed({1, MuxFrameType::kData, kMuxFlagEndStream, "stream"});
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->stream_id, 1u);
  ASSERT_TRUE(one->response.has_value());
  EXPECT_EQ(one->response->status_code, 200);
  EXPECT_EQ(one->response->body, "stream");
  EXPECT_EQ(assembler.open_streams(), 1u);

  auto three = feed({3, MuxFrameType::kData, kMuxFlagEndStream, "ials"});
  ASSERT_TRUE(three.has_value());
  ASSERT_TRUE(three->response.has_value());
  EXPECT_EQ(three->response->status_code, 206);
  EXPECT_EQ(three->response->body, "partials");
  EXPECT_EQ(assembler.open_streams(), 0u);
}

TEST(MuxAssemblerTest, RstIsStreamErrorOtherStreamsSurvive) {
  MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kResponse);
  assembler.ExpectStream(1, false);
  assembler.ExpectStream(3, false);

  ASSERT_OK_AND_ASSIGN(
      auto reset,
      assembler.OnFrame({1, MuxFrameType::kRst, 0,
                         MakeRstPayload(MuxRstCode::kInternalError, "boom")}));
  ASSERT_TRUE(reset.has_value());
  ASSERT_TRUE(reset->stream_error.has_value());
  EXPECT_EQ(reset->stream_error->code(), StatusCode::kRemoteError);

  // The sibling stream still completes normally.
  ASSERT_OK_AND_ASSIGN(auto head,
                       assembler.OnFrame({3, MuxFrameType::kHeaders,
                                          kMuxFlagEndStream,
                                          ResponseHead(204, 0)}));
  ASSERT_TRUE(head.has_value());
  ASSERT_TRUE(head->response.has_value());
  EXPECT_EQ(head->response->status_code, 204);
}

TEST(MuxAssemblerTest, BodyLengthMismatchIsStreamError) {
  MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kResponse);
  assembler.ExpectStream(1, false);
  ASSERT_OK(assembler.OnFrame({1, MuxFrameType::kHeaders, 0,
                               ResponseHead(200, 100)})
                .status());
  ASSERT_OK_AND_ASSIGN(
      auto event,
      assembler.OnFrame({1, MuxFrameType::kData, kMuxFlagEndStream, "few"}));
  ASSERT_TRUE(event.has_value());
  ASSERT_TRUE(event->stream_error.has_value());
  EXPECT_EQ(event->stream_error->code(), StatusCode::kProtocolError);
}

TEST(MuxAssemblerTest, HeadOnlyStreamToleratesDeclaredLength) {
  // A HEAD response declares the entity's Content-Length but sends no
  // body — legal only for streams registered head_only.
  MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kResponse);
  assembler.ExpectStream(1, true);
  ASSERT_OK_AND_ASSIGN(auto event,
                       assembler.OnFrame({1, MuxFrameType::kHeaders,
                                          kMuxFlagEndStream,
                                          ResponseHead(200, 4096)}));
  ASSERT_TRUE(event.has_value());
  ASSERT_TRUE(event->response.has_value());
  EXPECT_TRUE(event->response->body.empty());
}

TEST(MuxAssemblerTest, ConnectionFatalViolations) {
  // DATA for a stream never opened: framing sync is suspect, the whole
  // connection must die.
  {
    MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kResponse);
    auto result = assembler.OnFrame({5, MuxFrameType::kData, 0, "x"});
    EXPECT_FALSE(result.ok());
  }
  // Duplicate HEADERS on one stream.
  {
    MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kResponse);
    assembler.ExpectStream(1, false);
    ASSERT_OK(assembler.OnFrame({1, MuxFrameType::kHeaders, 0,
                                 ResponseHead(200, 10)})
                  .status());
    EXPECT_FALSE(assembler.OnFrame({1, MuxFrameType::kHeaders, 0,
                                    ResponseHead(200, 10)})
                     .ok());
  }
  // HEADERS for a stream the client never registered.
  {
    MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kResponse);
    EXPECT_FALSE(assembler.OnFrame({8, MuxFrameType::kHeaders, 0,
                                    ResponseHead(200, 0)})
                     .ok());
  }
}

TEST(MuxAssemblerTest, ForgottenStreamLateFramesAreDropped) {
  MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kResponse);
  assembler.ExpectStream(1, false);
  ASSERT_OK(assembler.OnFrame({1, MuxFrameType::kHeaders, 0,
                               ResponseHead(200, 10)})
                .status());
  assembler.Forget(1);
  EXPECT_EQ(assembler.open_streams(), 0u);
  // Late DATA (and even a late HEADERS) for the forgotten id are
  // silently absorbed instead of killing the connection.
  ASSERT_OK_AND_ASSIGN(
      auto late,
      assembler.OnFrame({1, MuxFrameType::kData, kMuxFlagEndStream, "zz"}));
  EXPECT_FALSE(late.has_value());
}

// --- transport behaviour against a live server -----------------------------

class MuxTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<httpd::ObjectStore>();
    Rng rng(21);
    content_ = rng.Bytes(128 * 1024);
    store_->Put("/obj", content_);
    auto handler = std::make_shared<httpd::DavHandler>(store_);
    router_ = std::make_shared<httpd::Router>();
    handler->Register(router_.get(), "/");
    auto server = MuxServer::Start({}, router_);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    context_ = std::make_unique<core::Context>();
    params_.transport = core::TransportKind::kMux;
    params_.metalink_mode = core::MetalinkMode::kDisabled;
  }

  Uri UrlFor(const std::string& path) {
    return *Uri::Parse(server_->BaseUrl() + path);
  }

  std::shared_ptr<httpd::ObjectStore> store_;
  std::string content_;
  std::shared_ptr<httpd::Router> router_;
  std::unique_ptr<MuxServer> server_;
  std::unique_ptr<core::Context> context_;
  core::RequestParams params_;
};

TEST_F(MuxTransportTest, StreamLimitBackpressureBlocksUntilSlotFrees) {
  // One connection, one stream slot: a second concurrent exchange must
  // wait for the first to finish instead of opening another socket.
  router_->Handle(http::Method::kGet, "/slow",
                  [](const http::HttpRequest&, http::HttpResponse* response) {
                    SleepForMicros(150'000);
                    response->status_code = 200;
                    response->body = "slow";
                  });
  core::RequestParams params = params_;
  params.mux_max_connections_per_host = 1;
  params.mux_max_streams_per_connection = 1;
  core::HttpClient client(context_.get());

  std::thread slow_thread([&] {
    auto slow = client.Execute(UrlFor("/slow"), http::Method::kGet, params);
    EXPECT_TRUE(slow.ok()) << slow.status().ToString();
  });
  SleepForMicros(40'000);  // let /slow claim the only slot

  Stopwatch stopwatch;
  auto fast = client.Execute(UrlFor("/obj"), http::Method::kGet, params);
  slow_thread.join();
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(fast->response.body, content_);
  // It had to wait for the slot, and never opened a second connection.
  EXPECT_GT(stopwatch.ElapsedMicros(), 50'000);
  IoCounters counters = context_->SnapshotCounters();
  EXPECT_GE(counters.mux_backpressure_waits, 1u);
  EXPECT_EQ(counters.mux_connections_opened, 1u);
  EXPECT_EQ(server_->stats().connections_accepted.load(), 1u);
}

TEST_F(MuxTransportTest, DeadlineExpiryMidStreamCancelsAndKeepsConnection) {
  router_->Handle(http::Method::kGet, "/wedge",
                  [](const http::HttpRequest&, http::HttpResponse* response) {
                    SleepForMicros(400'000);
                    response->status_code = 200;
                    response->body = "late";
                  });
  core::RequestParams params = params_;
  params.total_timeout_micros = 80'000;
  params.max_retries = 0;
  core::HttpClient client(context_.get());

  Stopwatch stopwatch;
  auto result = client.Execute(UrlFor("/wedge"), http::Method::kGet, params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_LT(stopwatch.ElapsedMicros(), 350'000);

  // The expiry killed the stream, not the connection: the next exchange
  // reuses it (no second connect) and completes fine.
  auto after = client.Execute(UrlFor("/obj"), http::Method::kGet, params_);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->response.body, content_);
  IoCounters counters = context_->SnapshotCounters();
  EXPECT_EQ(counters.mux_connections_opened, 1u);
  EXPECT_GE(counters.mux_streams_reset, 1u);
  // The wire-level cancel reaches the server once its handler returns.
  for (int i = 0; i < 100 && server_->stats().streams_cancelled.load() == 0;
       ++i) {
    SleepForMicros(10'000);
  }
  EXPECT_GE(server_->stats().streams_cancelled.load(), 1u);
}

TEST_F(MuxTransportTest, BreakerFastFailsThroughTheSeam) {
  // Aim the transport at a dead port: each connect failure counts
  // against the host's breaker, and once it opens, Execute fails fast
  // without touching the network.
  uint16_t dead_port = 0;
  {
    auto listener = net::TcpListener::Listen(0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
  }  // listener closes here, leaving the port dead

  core::RequestParams params = params_;
  params.breaker_failure_threshold = 2;
  params.breaker_cooldown_micros = 60'000'000;
  params.connect_timeout_micros = 200'000;
  params.max_retries = 0;
  core::HttpClient client(context_.get());
  Uri dead = *Uri::Parse("http://127.0.0.1:" + std::to_string(dead_port) +
                         "/x");

  for (int i = 0; i < 2; ++i) {
    auto result = client.Execute(dead, http::Method::kGet, params);
    ASSERT_FALSE(result.ok());
  }
  auto fast_fail = client.Execute(dead, http::Method::kGet, params);
  ASSERT_FALSE(fast_fail.ok());
  EXPECT_NE(fast_fail.status().ToString().find("circuit breaker open"),
            std::string::npos)
      << fast_fail.status().ToString();
}

}  // namespace
}  // namespace muxhttp
}  // namespace davix
