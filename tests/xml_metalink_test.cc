#include "common/rng.h"
#include "common/string_util.h"
#include "metalink/metalink.h"
#include "test_util.h"
#include "xml/xml.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

// -------------------------------------------------------------------- XML

TEST(XmlTest, ParsesSimpleDocument) {
  ASSERT_OK_AND_ASSIGN(auto root,
                       xml::ParseXml("<a x=\"1\"><b>text</b><c/></a>"));
  EXPECT_EQ(root->name(), "a");
  EXPECT_EQ(root->GetAttribute("x"), "1");
  ASSERT_NE(root->FirstChild("b"), nullptr);
  EXPECT_EQ(root->FirstChild("b")->text(), "text");
  ASSERT_NE(root->FirstChild("c"), nullptr);
  EXPECT_TRUE(root->FirstChild("c")->children().empty());
}

TEST(XmlTest, SkipsPrologDoctypeComments) {
  ASSERT_OK_AND_ASSIGN(
      auto root,
      xml::ParseXml("<?xml version=\"1.0\"?>\n<!DOCTYPE x>\n"
                    "<!-- comment -->\n<root><!-- inner --><a/></root>"));
  EXPECT_EQ(root->name(), "root");
  EXPECT_EQ(root->children().size(), 1u);
}

TEST(XmlTest, EntityUnescaping) {
  ASSERT_OK_AND_ASSIGN(auto root,
                       xml::ParseXml("<t>&lt;&amp;&gt;&quot;&apos;&#65;</t>"));
  EXPECT_EQ(root->text(), "<&>\"'A");
}

TEST(XmlTest, CdataPreserved) {
  ASSERT_OK_AND_ASSIGN(auto root,
                       xml::ParseXml("<t><![CDATA[a<b>&c]]></t>"));
  EXPECT_EQ(root->text(), "a<b>&c");
}

TEST(XmlTest, NamespacePrefixesMatchedOnLocalName) {
  ASSERT_OK_AND_ASSIGN(
      auto root,
      xml::ParseXml("<D:multistatus xmlns:D=\"DAV:\"><D:response/>"
                    "</D:multistatus>"));
  EXPECT_NE(root->FirstChild("response"), nullptr);
  EXPECT_EQ(root->Children("response").size(), 1u);
}

TEST(XmlTest, RejectsMalformed) {
  EXPECT_FALSE(xml::ParseXml("").ok());
  EXPECT_FALSE(xml::ParseXml("<a>").ok());
  EXPECT_FALSE(xml::ParseXml("<a></b>").ok());
  EXPECT_FALSE(xml::ParseXml("<a x=1></a>").ok());
  EXPECT_FALSE(xml::ParseXml("<a>&unknown;</a>").ok());
  EXPECT_FALSE(xml::ParseXml("<a/><b/>").ok());  // two roots
}

TEST(XmlTest, SerializeEscapes) {
  xml::XmlNode node("t");
  node.set_text("a<b>&\"'");
  node.SetAttribute("k", "v<&>");
  std::string out = node.Serialize();
  EXPECT_EQ(out, "<t k=\"v&lt;&amp;&gt;\">a&lt;b&gt;&amp;&quot;&apos;</t>");
}

TEST(XmlTest, SerializeParseRoundTrip) {
  xml::XmlNode root("metalink");
  root.SetAttribute("xmlns", "urn:example");
  xml::XmlNode* file = root.AddChild("file");
  file->SetAttribute("name", "a&b.root");
  file->AddChild("size")->set_text("123");
  xml::XmlNode* url = file->AddChild("url");
  url->SetAttribute("priority", "2");
  url->set_text("http://h:1/p?x=<1>");

  ASSERT_OK_AND_ASSIGN(auto parsed, xml::ParseXml(root.Serialize(2)));
  EXPECT_EQ(parsed->name(), "metalink");
  const xml::XmlNode* parsed_file = parsed->FirstChild("file");
  ASSERT_NE(parsed_file, nullptr);
  EXPECT_EQ(parsed_file->GetAttribute("name"), "a&b.root");
  EXPECT_EQ(parsed_file->ChildText("size"), "123");
  EXPECT_EQ(std::string(TrimWhitespace(
                parsed_file->FirstChild("url")->text())),
            "http://h:1/p?x=<1>");
}

TEST(XmlTest, ChildTextTrimsWhitespace) {
  ASSERT_OK_AND_ASSIGN(auto root, xml::ParseXml("<a><b>\n  v  \n</b></a>"));
  EXPECT_EQ(root->ChildText("b"), "v");
  EXPECT_EQ(root->ChildText("missing"), "");
}

// --------------------------------------------------------------- Metalink

constexpr char kSampleMetalink[] = R"(<?xml version="1.0" encoding="UTF-8"?>
<metalink xmlns="urn:ietf:params:xml:ns:metalink">
  <file name="events.root">
    <size>1048576</size>
    <hash type="md5">0123456789abcdef0123456789abcdef</hash>
    <hash type="sha-256">ignored</hash>
    <url priority="2" location="us">http://bnl.example:80/events.root</url>
    <url priority="1" location="ch">http://cern.example:80/events.root</url>
    <url priority="3">http://glasgow.example:80/events.root</url>
  </file>
</metalink>)";

TEST(MetalinkTest, ParsesSample) {
  ASSERT_OK_AND_ASSIGN(metalink::MetalinkFile file,
                       metalink::ParseMetalink(kSampleMetalink));
  EXPECT_EQ(file.name, "events.root");
  EXPECT_EQ(file.size, 1048576u);
  EXPECT_EQ(file.md5, "0123456789abcdef0123456789abcdef");
  ASSERT_EQ(file.replicas.size(), 3u);
}

TEST(MetalinkTest, SortedReplicasByPriority) {
  ASSERT_OK_AND_ASSIGN(metalink::MetalinkFile file,
                       metalink::ParseMetalink(kSampleMetalink));
  std::vector<metalink::Replica> sorted = file.SortedReplicas();
  EXPECT_EQ(sorted[0].url, "http://cern.example:80/events.root");
  EXPECT_EQ(sorted[1].url, "http://bnl.example:80/events.root");
  EXPECT_EQ(sorted[2].url, "http://glasgow.example:80/events.root");
  EXPECT_EQ(sorted[0].location, "ch");
}

TEST(MetalinkTest, RejectsNonMetalink) {
  EXPECT_FALSE(metalink::ParseMetalink("<html></html>").ok());
  EXPECT_FALSE(
      metalink::ParseMetalink("<metalink></metalink>").ok());  // no file
  EXPECT_FALSE(metalink::ParseMetalink(
                   "<metalink><file name=\"x\"></file></metalink>")
                   .ok());  // no urls
}

TEST(MetalinkTest, WriteParseRoundTrip) {
  metalink::MetalinkFile file;
  file.name = "data set.root";  // space must survive escaping
  file.size = 777;
  file.md5 = "aabbccddeeff00112233445566778899";
  for (int i = 0; i < 4; ++i) {
    metalink::Replica replica;
    replica.url = "http://replica" + std::to_string(i) + ".example/d?x=a&b=c";
    replica.priority = 4 - i;
    replica.location = i % 2 == 0 ? "ch" : "us";
    file.replicas.push_back(replica);
  }
  ASSERT_OK_AND_ASSIGN(metalink::MetalinkFile parsed,
                       metalink::ParseMetalink(metalink::WriteMetalink(file)));
  EXPECT_EQ(parsed.name, file.name);
  EXPECT_EQ(parsed.size, file.size);
  EXPECT_EQ(parsed.md5, file.md5);
  ASSERT_EQ(parsed.replicas.size(), file.replicas.size());
  for (size_t i = 0; i < file.replicas.size(); ++i) {
    EXPECT_EQ(parsed.replicas[i].url, file.replicas[i].url);
    EXPECT_EQ(parsed.replicas[i].priority, file.replicas[i].priority);
    EXPECT_EQ(parsed.replicas[i].location, file.replicas[i].location);
  }
}

// Property: round trip over randomised metalinks.
class MetalinkRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetalinkRoundTripTest, WriteParseIdentity) {
  Rng rng(GetParam());
  metalink::MetalinkFile file;
  file.name = "file" + std::to_string(rng.Below(1000)) + ".root";
  file.size = rng.Below(1ull << 40);
  size_t n = 1 + rng.Below(6);
  for (size_t i = 0; i < n; ++i) {
    metalink::Replica replica;
    replica.url = "http://host" + std::to_string(rng.Below(100)) + ":" +
                  std::to_string(1 + rng.Below(65535)) + "/p" +
                  std::to_string(i);
    replica.priority = static_cast<int>(1 + rng.Below(99));
    file.replicas.push_back(replica);
  }
  ASSERT_OK_AND_ASSIGN(metalink::MetalinkFile parsed,
                       metalink::ParseMetalink(metalink::WriteMetalink(file)));
  EXPECT_EQ(parsed.size, file.size);
  ASSERT_EQ(parsed.replicas.size(), file.replicas.size());
  std::vector<metalink::Replica> lhs = file.SortedReplicas();
  std::vector<metalink::Replica> rhs = parsed.SortedReplicas();
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].url, rhs[i].url);
    EXPECT_EQ(lhs[i].priority, rhs[i].priority);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetalinkRoundTripTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace davix
