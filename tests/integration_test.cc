// Full-stack integration: a miniature WLCG-like deployment — three
// storage "sites" (each with an HTTP door and an xrootd door over the
// same store), a federation serving Metalinks — running the paper's
// analysis workload end to end, with failures injected mid-run.

#include <atomic>
#include <thread>

#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/metalink_engine.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"
#include "root/analysis_job.h"
#include "root/transport_adapters.h"
#include "root/tree_format.h"
#include "test_util.h"
#include "xrootd/xrd_client.h"
#include "xrootd/xrd_server.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

constexpr char kTreePath[] = "/atlas/run1/events.rnt";

class GridIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.n_events = 2000;
    spec_.events_per_basket = 200;
    spec_.branches = {{"id", 8}, {"pt", 4}, {"cells", 256}};
    tree_ = root::BuildTreeFile(spec_, 31337);

    catalog_ = std::make_shared<fed::ReplicaCatalog>();
    for (int site = 0; site < 3; ++site) {
      auto store = std::make_shared<httpd::ObjectStore>();
      store->Put(kTreePath, tree_);
      sites_.push_back(testing::StartStorageServer());
      // Replace the default store-backed site with one sharing `store`
      // for both protocols.
      sites_.back().store->Put(kTreePath, tree_);
      auto xrd = xrootd::XrdServer::Start({}, sites_.back().store);
      ASSERT_TRUE(xrd.ok());
      xrd_doors_.push_back(std::move(*xrd));
      catalog_->AddReplica(kTreePath, sites_.back().UrlFor(kTreePath),
                           site + 1);
    }
    catalog_->SetFileMeta(kTreePath, tree_.size(), Md5::HexDigest(tree_));
    federation_ = std::make_shared<fed::FederationHandler>(catalog_);
    auto router = std::make_shared<httpd::Router>();
    federation_->Register(router.get(), "/");
    auto fed = httpd::HttpServer::Start({}, router);
    ASSERT_TRUE(fed.ok());
    fed_server_ = std::move(*fed);

    params_.metalink_mode = core::MetalinkMode::kFailover;
    params_.metalink_resolver = fed_server_->BaseUrl();
    params_.max_retries = 0;
  }

  root::AnalysisConfig JobConfig() {
    root::AnalysisConfig config;
    config.compute_iterations_per_event = 1;
    config.cache.cluster_rows = 2;
    return config;
  }

  root::TreeSpec spec_;
  std::string tree_;
  std::vector<testing::TestStorageServer> sites_;
  std::vector<std::unique_ptr<xrootd::XrdServer>> xrd_doors_;
  std::shared_ptr<fed::ReplicaCatalog> catalog_;
  std::shared_ptr<fed::FederationHandler> federation_;
  std::unique_ptr<httpd::HttpServer> fed_server_;
  core::Context context_;
  core::RequestParams params_;
};

TEST_F(GridIntegrationTest, AnalysisOverAllTransportsAgrees) {
  root::MemoryFile truth(tree_);
  auto truth_report = root::RunAnalysis(&truth, JobConfig());
  ASSERT_TRUE(truth_report.ok());

  // davix against every site.
  for (auto& site : sites_) {
    auto file = root::DavixRandomAccessFile::Open(
        &context_, site.UrlFor(kTreePath), params_);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    auto report = root::RunAnalysis(file->get(), JobConfig());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->physics_sum, truth_report->physics_sum);
  }
  // xrootd against every site.
  for (auto& door : xrd_doors_) {
    auto client = xrootd::XrdClient::Connect("127.0.0.1", door->port());
    ASSERT_TRUE(client.ok());
    ASSERT_OK((*client)->Login());
    auto file = root::XrdRandomAccessFile::Open(client->get(), kTreePath);
    ASSERT_TRUE(file.ok());
    auto report = root::RunAnalysis(file->get(), JobConfig());
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->physics_sum, truth_report->physics_sum);
    file->reset();
  }
}

TEST_F(GridIntegrationTest, AnalysisSurvivesPrimarySiteOutage) {
  // Kill site 0 entirely (both doors).
  sites_[0].server->faults().SetServerDown(true);
  xrd_doors_[0]->faults().SetServerDown(true);

  auto file = root::DavixRandomAccessFile::Open(
      &context_, sites_[0].UrlFor(kTreePath), params_);
  // Open itself already fails over to site 1 via the federation.
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  auto report = root::RunAnalysis(file->get(), JobConfig());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  root::MemoryFile truth(tree_);
  auto truth_report = root::RunAnalysis(&truth, JobConfig());
  ASSERT_TRUE(truth_report.ok());
  EXPECT_EQ(report->physics_sum, truth_report->physics_sum);
  EXPECT_GE(context_.SnapshotCounters().replica_failovers, 1u);
}

TEST_F(GridIntegrationTest, AnalysisSurvivesMidRunOutage) {
  auto file = root::DavixRandomAccessFile::Open(
      &context_, sites_[0].UrlFor(kTreePath), params_);
  ASSERT_TRUE(file.ok());

  // Kill the primary after the first cluster loads: a background thread
  // pulls the plug shortly into the run.
  std::thread killer([&] {
    SleepForMicros(20'000);
    sites_[0].server->faults().SetServerDown(true);
  });
  auto report = root::RunAnalysis(file->get(), JobConfig());
  killer.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  root::MemoryFile truth(tree_);
  auto truth_report = root::RunAnalysis(&truth, JobConfig());
  EXPECT_EQ(report->physics_sum, truth_report->physics_sum);
}

TEST_F(GridIntegrationTest, ConcurrentJobsShareOneContext) {
  std::atomic<int> failures{0};
  double expected;
  {
    root::MemoryFile truth(tree_);
    auto truth_report = root::RunAnalysis(&truth, JobConfig());
    ASSERT_TRUE(truth_report.ok());
    expected = truth_report->physics_sum;
  }
  std::vector<std::thread> jobs;
  for (int j = 0; j < 4; ++j) {
    jobs.emplace_back([&, j] {
      auto file = root::DavixRandomAccessFile::Open(
          &context_, sites_[j % sites_.size()].UrlFor(kTreePath), params_);
      if (!file.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto report = root::RunAnalysis(file->get(), JobConfig());
      if (!report.ok() || report->physics_sum != expected) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& job : jobs) job.join();
  EXPECT_EQ(failures.load(), 0);
  // The §2.2 pool grew with concurrency but recycled across clusters.
  EXPECT_GT(context_.SnapshotCounters().connections_reused, 0u);
}

TEST_F(GridIntegrationTest, MultiStreamTreeDownloadBitExact) {
  core::HttpClient client(&context_);
  core::MetalinkEngine engine(&client);
  core::RequestParams params = params_;
  params.metalink_mode = core::MetalinkMode::kMultiStream;
  params.multistream_chunk_bytes = 64 * 1024;
  params.multistream_max_streams = 3;
  ASSERT_OK_AND_ASSIGN(
      std::string downloaded,
      engine.MultiStreamGet(*Uri::Parse(sites_[0].UrlFor(kTreePath)),
                            params));
  EXPECT_EQ(downloaded, tree_);
}

TEST_F(GridIntegrationTest, FederationRedirectModeServesData) {
  // A client that does not speak Metalink follows the federation's 302
  // to the best replica and reads normally.
  core::HttpClient client(&context_);
  core::RequestParams params;
  params.metalink_mode = core::MetalinkMode::kDisabled;
  ASSERT_OK_AND_ASSIGN(
      auto exchange,
      client.Execute(*Uri::Parse(fed_server_->BaseUrl() + kTreePath),
                     http::Method::kGet, params));
  EXPECT_EQ(exchange.response.status_code, 200);
  EXPECT_EQ(exchange.response.body, tree_);
  // The exchange's final URL is the replica, not the federation.
  EXPECT_NE(exchange.final_url.ToString(),
            fed_server_->BaseUrl() + kTreePath);
}

TEST_F(GridIntegrationTest, ChecksumConsistentAcrossReplicas) {
  for (auto& site : sites_) {
    core::DavFile file =
        *core::DavFile::Make(&context_, site.UrlFor(kTreePath));
    core::RequestParams params;
    params.metalink_mode = core::MetalinkMode::kDisabled;
    ASSERT_OK_AND_ASSIGN(std::string digest, file.GetChecksum(params));
    EXPECT_EQ(digest, Md5::HexDigest(tree_));
  }
}

}  // namespace
}  // namespace davix
