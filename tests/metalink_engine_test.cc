#include "common/checksum.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/metalink_engine.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace core {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

/// A replicated deployment: N storage servers holding the same object
/// plus one federation server that serves Metalinks for it.
class ReplicatedSetupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1234);
    content_ = rng.Bytes(300'000);
    for (int i = 0; i < 3; ++i) {
      replicas_.push_back(testing::StartStorageServer());
      replicas_.back().store->Put("/data.bin", content_);
    }
    catalog_ = std::make_shared<fed::ReplicaCatalog>();
    for (size_t i = 0; i < replicas_.size(); ++i) {
      catalog_->AddReplica("/data.bin",
                           replicas_[i].UrlFor("/data.bin"),
                           static_cast<int>(i + 1));
    }
    catalog_->SetFileMeta("/data.bin", content_.size(),
                          Md5::HexDigest(content_));
    federation_ = std::make_shared<fed::FederationHandler>(catalog_);
    fed_router_ = std::make_shared<httpd::Router>();
    federation_->Register(fed_router_.get(), "/");
    auto server = httpd::HttpServer::Start({}, fed_router_);
    ASSERT_TRUE(server.ok());
    fed_server_ = std::move(*server);

    context_ = std::make_unique<Context>();
    params_.metalink_mode = MetalinkMode::kFailover;
    params_.metalink_resolver = fed_server_->BaseUrl();
    params_.max_retries = 0;  // keep failover fast in tests
    params_.connect_timeout_micros = 2'000'000;
  }

  /// URL of the primary (priority 1) replica.
  std::string PrimaryUrl() const { return replicas_[0].UrlFor("/data.bin"); }

  std::string content_;
  std::vector<TestStorageServer> replicas_;
  std::shared_ptr<fed::ReplicaCatalog> catalog_;
  std::shared_ptr<fed::FederationHandler> federation_;
  std::shared_ptr<httpd::Router> fed_router_;
  std::unique_ptr<httpd::HttpServer> fed_server_;
  std::unique_ptr<Context> context_;
  RequestParams params_;
};

TEST_F(ReplicatedSetupTest, FetchMetalinkViaResolver) {
  HttpClient client(context_.get());
  MetalinkEngine engine(&client);
  Uri resource = *Uri::Parse(PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(metalink::MetalinkFile file,
                       engine.Fetch(resource, params_));
  EXPECT_EQ(file.size, content_.size());
  EXPECT_EQ(file.replicas.size(), 3u);
  EXPECT_EQ(file.md5, Md5::HexDigest(content_));
}

TEST_F(ReplicatedSetupTest, FetchMetalinkFromOriginConvention) {
  // Register the federation with dav fallback on replica 0's server so
  // "GET /data.bin?metalink" works at the origin, davix-style.
  auto handler = replicas_[0].handler;
  federation_->RegisterWithFallback(
      replicas_[0].router.get(), "/",
      [handler](const http::HttpRequest& request,
                http::HttpResponse* response) {
        handler->Handle(request, response);
      });
  HttpClient client(context_.get());
  MetalinkEngine engine(&client);
  RequestParams origin_params = params_;
  origin_params.metalink_resolver.clear();  // ask the origin host
  Uri resource = *Uri::Parse(PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(metalink::MetalinkFile file,
                       engine.Fetch(resource, origin_params));
  EXPECT_EQ(file.replicas.size(), 3u);
  // And a plain GET on the same path still returns the bytes.
  ASSERT_OK_AND_ASSIGN(
      auto exchange,
      client.Execute(resource, http::Method::kGet, origin_params));
  EXPECT_EQ(exchange.response.body, content_);
}

TEST_F(ReplicatedSetupTest, FailoverToSecondReplica) {
  replicas_[0].server->faults().SetServerDown(true);
  DavFile file = *DavFile::Make(context_.get(), PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(std::string body, file.Get(params_));
  EXPECT_EQ(body, content_);
  EXPECT_GE(context_->SnapshotCounters().replica_failovers, 1u);
}

TEST_F(ReplicatedSetupTest, FailoverSkipsToThirdWhenTwoDown) {
  replicas_[0].server->faults().SetServerDown(true);
  replicas_[1].server->faults().SetServerDown(true);
  DavFile file = *DavFile::Make(context_.get(), PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(std::string body, file.Get(params_));
  EXPECT_EQ(body, content_);
}

TEST_F(ReplicatedSetupTest, AllReplicasDownIsAllReplicasFailed) {
  for (auto& replica : replicas_) {
    replica.server->faults().SetServerDown(true);
  }
  DavFile file = *DavFile::Make(context_.get(), PrimaryUrl());
  Result<std::string> result = file.Get(params_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAllReplicasFailed);
}

TEST_F(ReplicatedSetupTest, FailoverDisabledFailsFast) {
  replicas_[0].server->faults().SetServerDown(true);
  params_.metalink_mode = MetalinkMode::kDisabled;
  DavFile file = *DavFile::Make(context_.get(), PrimaryUrl());
  EXPECT_FALSE(file.Get(params_).ok());
  EXPECT_EQ(context_->SnapshotCounters().replica_failovers, 0u);
}

TEST_F(ReplicatedSetupTest, FailoverOnVectoredReads) {
  replicas_[0].server->faults().SetServerDown(true);
  DavFile file = *DavFile::Make(context_.get(), PrimaryUrl());
  std::vector<http::ByteRange> ranges = {{100, 50}, {200'000, 64}};
  ASSERT_OK_AND_ASSIGN(auto results, file.ReadPartialVec(ranges, params_));
  EXPECT_EQ(results[0], content_.substr(100, 50));
  EXPECT_EQ(results[1], content_.substr(200'000, 64));
}

TEST_F(ReplicatedSetupTest, FailoverOn404WhenResourceMovedElsewhere) {
  // Primary is healthy but lacks the object (federated namespace).
  replicas_[0].store->Delete("/data.bin").ok();
  DavFile file = *DavFile::Make(context_.get(), PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(std::string body, file.Get(params_));
  EXPECT_EQ(body, content_);
}

TEST_F(ReplicatedSetupTest, MultiStreamDownloadsAndVerifiesMd5) {
  params_.metalink_mode = MetalinkMode::kMultiStream;
  params_.multistream_chunk_bytes = 64 * 1024;
  params_.multistream_max_streams = 3;
  HttpClient client(context_.get());
  MetalinkEngine engine(&client);
  Uri resource = *Uri::Parse(PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(std::string body,
                       engine.MultiStreamGet(resource, params_));
  EXPECT_EQ(body, content_);
  // All three replicas served traffic.
  int replicas_used = 0;
  for (auto& replica : replicas_) {
    if (replica.handler->stats().get_requests.load() > 0) ++replicas_used;
  }
  EXPECT_EQ(replicas_used, 3);
}

TEST_F(ReplicatedSetupTest, MultiStreamSurvivesDeadReplica) {
  replicas_[1].server->faults().SetServerDown(true);
  params_.metalink_mode = MetalinkMode::kMultiStream;
  params_.multistream_chunk_bytes = 64 * 1024;
  HttpClient client(context_.get());
  MetalinkEngine engine(&client);
  Uri resource = *Uri::Parse(PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(std::string body,
                       engine.MultiStreamGet(resource, params_));
  EXPECT_EQ(body, content_);
}

TEST_F(ReplicatedSetupTest, MultiStreamQuarantinesMismatchedReplica) {
  // Poison replica 2's copy: its ETag disagrees with the generation the
  // set agrees on (seeded from the best-ranked healthy replica), so its
  // chunks are rejected and refetched from the agreeing replicas — the
  // download still delivers the correct bytes.
  replicas_[2].store->Put("/data.bin", std::string(content_.size(), 'Z'));
  params_.metalink_mode = MetalinkMode::kMultiStream;
  params_.multistream_chunk_bytes = 64 * 1024;
  params_.multistream_max_streams = 3;
  HttpClient client(context_.get());
  MetalinkEngine engine(&client);
  Uri resource = *Uri::Parse(PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(std::string body,
                       engine.MultiStreamGet(resource, params_));
  EXPECT_EQ(body, content_);
  IoCounters io = context_->SnapshotCounters();
  EXPECT_GE(io.replica_validator_rejects, 1u);
  EXPECT_GE(io.replica_quarantines, 1u);
}

TEST_F(ReplicatedSetupTest, MultiStreamDetectsCorruption) {
  // Poison every replica consistently (equal ETag generations, so no
  // quarantine can help): the Metalink md5 is the last line of defence.
  for (auto& replica : replicas_) {
    replica.store->Put("/data.bin", std::string(content_.size(), 'Z'));
  }
  params_.metalink_mode = MetalinkMode::kMultiStream;
  params_.multistream_chunk_bytes = 64 * 1024;
  HttpClient client(context_.get());
  MetalinkEngine engine(&client);
  Uri resource = *Uri::Parse(PrimaryUrl());
  Result<std::string> result = engine.MultiStreamGet(resource, params_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(ReplicatedSetupTest, DavFileGetMultiStreamMode) {
  params_.metalink_mode = MetalinkMode::kMultiStream;
  params_.multistream_chunk_bytes = 100'000;
  DavFile file = *DavFile::Make(context_.get(), PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(std::string body, file.Get(params_));
  EXPECT_EQ(body, content_);
}

TEST_F(ReplicatedSetupTest, ResolveReplicasOrderedByPriority) {
  HttpClient client(context_.get());
  MetalinkEngine engine(&client);
  Uri resource = *Uri::Parse(PrimaryUrl());
  ASSERT_OK_AND_ASSIGN(auto replicas,
                       engine.ResolveReplicas(resource, params_));
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[0].ToString(), replicas_[0].UrlFor("/data.bin"));
  EXPECT_EQ(replicas[2].ToString(), replicas_[2].UrlFor("/data.bin"));
}

TEST_F(ReplicatedSetupTest, UnknownResourceKeepsOriginalError) {
  DavFile file = *DavFile::Make(
      context_.get(), replicas_[0].UrlFor("/not-registered"));
  Result<std::string> result = file.Get(params_);
  ASSERT_FALSE(result.ok());
  // No metalink for it: the original 404 comes through, not a metalink
  // error.
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace core
}  // namespace davix
