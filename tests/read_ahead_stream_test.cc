#include "core/read_ahead_stream.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace core {
namespace {

/// Synthetic backing object: fetches slice bytes out of an in-memory
/// string, with instrumentation hooks. Completion order is shuffled by
/// per-fetch jitter so in-order delivery is actually exercised.
struct FakeObject {
  explicit FakeObject(size_t size, uint64_t seed = 7) {
    Rng rng(seed);
    content = rng.Bytes(size);
  }

  ReadAheadFetchFn Fetcher() {
    return [this](uint64_t offset, uint64_t length) -> Result<std::string> {
      int now = concurrent.fetch_add(1) + 1;
      int seen = max_concurrent.load();
      while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
      }
      fetches.fetch_add(1);
      if (jitter_micros > 0) {
        // Floor of jitter_micros plus an offset-derived spread, so every
        // fetch takes real time and completion order gets shuffled.
        std::this_thread::sleep_for(std::chrono::microseconds(
            jitter_micros + (offset / 997) % jitter_micros));
      }
      concurrent.fetch_sub(1);
      if (fail_at_offset.load() == static_cast<int64_t>(offset) &&
          failures_left.fetch_sub(1) > 0) {
        return Status::IoError("injected fetch failure");
      }
      if (offset >= content.size()) return std::string();
      return content.substr(offset, length);
    };
  }

  std::string content;
  std::atomic<int> fetches{0};
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<int64_t> fail_at_offset{-1};
  std::atomic<int> failures_left{0};
  int64_t jitter_micros = 400;
};

ReadAheadStreamConfig Config(uint64_t chunk, size_t window, uint64_t size) {
  ReadAheadStreamConfig config;
  config.chunk_bytes = chunk;
  config.window_chunks = window;
  config.file_size = size;
  return config;
}

TEST(ReadAheadStreamTest, InOrderDeliveryAcrossChunkBoundaries) {
  FakeObject object(100'000);
  ThreadPool pool(8);
  ReadAheadStream stream(object.Fetcher(), &pool,
                         Config(4096, 4, object.content.size()));
  // Read sizes straddle chunk boundaries in every alignment.
  std::string assembled;
  size_t sizes[] = {1000, 5000, 7, 4096, 9000, 1};
  size_t turn = 0;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string data,
                         stream.Read(assembled.size(), sizes[turn++ % 6]));
    if (data.empty()) break;
    assembled += data;
  }
  EXPECT_EQ(assembled, object.content);
  // Every chunk fetched exactly once.
  EXPECT_EQ(object.fetches.load(),
            static_cast<int>((object.content.size() + 4095) / 4096));
}

TEST(ReadAheadStreamTest, KeepsAtMostWindowChunksInFlight) {
  FakeObject object(64 * 1024);
  object.jitter_micros = 2000;
  ThreadPool pool(8);
  ReadAheadStream stream(object.Fetcher(), &pool,
                         Config(1024, 3, object.content.size()));
  std::string assembled;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string data, stream.Read(assembled.size(), 800));
    if (data.empty()) break;
    assembled += data;
  }
  EXPECT_EQ(assembled, object.content);
  EXPECT_LE(object.max_concurrent.load(), 3);
}

TEST(ReadAheadStreamTest, EofOnNonChunkAlignedObject) {
  FakeObject object(10'000);  // 2 full 4096 chunks + a 1808-byte tail
  ThreadPool pool(4);
  ReadAheadStream stream(object.Fetcher(), &pool,
                         Config(4096, 4, object.content.size()));
  ASSERT_OK_AND_ASSIGN(std::string head, stream.Read(0, 9000));
  EXPECT_EQ(head, object.content.substr(0, 9000));
  // Crossing EOF returns the short tail, then empty forever.
  ASSERT_OK_AND_ASSIGN(std::string tail, stream.Read(9000, 5000));
  EXPECT_EQ(tail, object.content.substr(9000));
  ASSERT_OK_AND_ASSIGN(std::string empty, stream.Read(10'000, 100));
  EXPECT_TRUE(empty.empty());
}

TEST(ReadAheadStreamTest, SeeksReseedTheWindow) {
  FakeObject object(100'000);
  ThreadPool pool(8);
  ReadAheadStream stream(object.Fetcher(), &pool,
                         Config(4096, 4, object.content.size()));
  ASSERT_OK_AND_ASSIGN(std::string a, stream.Read(0, 100));
  EXPECT_EQ(a, object.content.substr(0, 100));
  // Forward, out of the window.
  ASSERT_OK_AND_ASSIGN(std::string b, stream.Read(60'000, 100));
  EXPECT_EQ(b, object.content.substr(60'000, 100));
  // Backward.
  ASSERT_OK_AND_ASSIGN(std::string c, stream.Read(10, 100));
  EXPECT_EQ(c, object.content.substr(10, 100));
  // Forward but still inside the prefetched window: the in-flight
  // chunks for the skipped span are dropped, the rest stays valid.
  ASSERT_OK_AND_ASSIGN(std::string d, stream.Read(110 + 2 * 4096, 100));
  EXPECT_EQ(d, object.content.substr(110 + 2 * 4096, 100));
}

TEST(ReadAheadStreamTest, MidStreamErrorSurfacesExactlyOnceThenRecovers) {
  FakeObject object(64 * 1024);
  ThreadPool pool(8);
  object.fail_at_offset.store(5 * 4096);
  object.failures_left.store(1);
  ReadAheadStream stream(object.Fetcher(), &pool,
                         Config(4096, 4, object.content.size()));
  std::string assembled;
  int errors = 0;
  while (assembled.size() < object.content.size()) {
    Result<std::string> data = stream.Read(assembled.size(), 3000);
    if (!data.ok()) {
      ++errors;
      continue;  // the stream re-seeds at the same position
    }
    ASSERT_FALSE(data->empty());
    assembled += *data;
  }
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(assembled, object.content);
}

TEST(ReadAheadStreamTest, ShortFetchIsProtocolError) {
  FakeObject object(10'000);
  ThreadPool pool(4);
  // Lie about the size: the last chunk comes back short.
  ReadAheadStream stream(object.Fetcher(), &pool, Config(4096, 2, 12'000));
  Result<std::string> data = stream.Read(8192, 4000);
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kProtocolError);
}

TEST(ReadAheadStreamTest, InvalidateCancelsUnstartedFetches) {
  FakeObject object(1 << 20);
  // One worker: with a window of 8, chunks queue behind the first slow
  // fetch; Invalidate must stop them from ever touching the "network".
  ThreadPool pool(1);
  object.jitter_micros = 4000;
  ReadAheadStream stream(object.Fetcher(), &pool,
                         Config(4096, 8, object.content.size()));
  ASSERT_OK_AND_ASSIGN(std::string head, stream.Read(0, 100));
  EXPECT_EQ(head, object.content.substr(0, 100));
  stream.Invalidate();
  EXPECT_EQ(stream.WindowSize(), 0u);
  pool.Shutdown();  // runs whatever was queued
  // 8 chunks were scheduled; the ones not yet started when Invalidate
  // ran were skipped (fetches well below the full window).
  EXPECT_LT(object.fetches.load(), 8);
  // The stream still works after an invalidation.
  ASSERT_OK_AND_ASSIGN(std::string again, stream.Read(100, 100));
  EXPECT_EQ(again, object.content.substr(100, 100));
}

TEST(ReadAheadStreamTest, DestructionWithInFlightFetchesIsSafe) {
  auto object = std::make_shared<FakeObject>(1 << 20);
  object->jitter_micros = 3000;
  ThreadPool pool(4);
  {
    // The fetcher holds the object alive via shared_ptr, mirroring how
    // DavPosix's fetch closure owns the DavFile.
    auto fetch = [object](uint64_t offset, uint64_t length) {
      return object->Fetcher()(offset, length);
    };
    ReadAheadStream stream(fetch, &pool,
                           Config(8192, 4, object->content.size()));
    ASSERT_OK_AND_ASSIGN(std::string head, stream.Read(0, 10));
    EXPECT_EQ(head, object->content.substr(0, 10));
    // Destroyed here with up to 3 fetches still in flight.
  }
  pool.Shutdown();
  SUCCEED();
}

TEST(ReadAheadStreamTest, ConsumerOnPoolThreadDoesNotDeadlock) {
  // The consumer itself runs on the only dispatcher thread, so the
  // chunk-fetch tasks it schedules are queued behind it. Without the
  // inline-claim fallback in WaitForChunk this deadlocks permanently.
  FakeObject object(40'000);
  object.jitter_micros = 0;
  ThreadPool pool(1);
  std::atomic<bool> correct{false};
  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  ASSERT_TRUE(pool.Submit([&] {
    ReadAheadStream stream(object.Fetcher(), &pool,
                           Config(4096, 4, object.content.size()));
    std::string assembled;
    while (true) {
      Result<std::string> data = stream.Read(assembled.size(), 3000);
      if (!data.ok() || data->empty()) break;
      assembled += *data;
    }
    correct.store(assembled == object.content);
    // Notify while holding the lock: the waiter cannot observe
    // `finished`, return, and destroy the stack-allocated cv while
    // notify_all is still touching it.
    std::lock_guard<std::mutex> lock(mu);
    finished = true;
    cv.notify_all();
  }));
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return finished; }));
  }
  pool.Shutdown();  // join the worker before cv/mu leave scope
  EXPECT_TRUE(correct.load());
}

TEST(ReadAheadStreamTest, CoversReportsWindowSpan) {
  FakeObject object(100'000);
  ThreadPool pool(4);
  ReadAheadStream stream(object.Fetcher(), &pool,
                         Config(4096, 4, object.content.size()));
  EXPECT_FALSE(stream.Covers(0));  // nothing scheduled yet
  ASSERT_OK(stream.Read(0, 100).status());
  // Window spans [0, 4 * 4096); position 100 was consumed but chunk 0
  // is still the front.
  EXPECT_TRUE(stream.Covers(100));
  EXPECT_TRUE(stream.Covers(4 * 4096 - 1));
  EXPECT_FALSE(stream.Covers(4 * 4096));
  stream.Invalidate();
  EXPECT_FALSE(stream.Covers(100));
}

TEST(ReadAheadStreamTest, NullPoolDegradesToSynchronousFetches) {
  FakeObject object(20'000);
  object.jitter_micros = 0;
  ReadAheadStream stream(object.Fetcher(), nullptr,
                         Config(4096, 4, object.content.size()));
  std::string assembled;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string data, stream.Read(assembled.size(), 1500));
    if (data.empty()) break;
    assembled += data;
  }
  EXPECT_EQ(assembled, object.content);
}

}  // namespace
}  // namespace core
}  // namespace davix
