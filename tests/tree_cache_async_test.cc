// Directed tests of the pipelined TreeCache prefetch window and the
// StorageAdapter registry:
//  - the pipeline genuinely overlaps fetch with consumption (proven with
//    a latch-gated fake transport, no timing assumptions),
//  - the byte budget caps early-requested bytes without ever refetching
//    or skipping a basket byte,
//  - budget-truncated prefixes are only issued as the immediate next
//    cluster, never deep in the pipeline,
//  - seeks discard stale in-flight prefetches (counted, drained),
//  - in-flight errors degrade to the synchronous path: a failed prefetch
//    alone never surfaces, a failed prefetch plus a failed fallback
//    surfaces once and the cache recovers afterwards,
//  - the async davix adapter is byte-exact against the sync mode under
//    injected server faults,
//  - URL scheme -> transport resolution through StorageAdapterRegistry.

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/clock.h"
#include "core/context.h"
#include "muxhttp/mux.h"
#include "root/analysis_job.h"
#include "root/storage_adapter.h"
#include "root/transport_adapters.h"
#include "root/tree_cache.h"
#include "root/tree_format.h"
#include "root/tree_reader.h"
#include "test_util.h"
#include "xrootd/xrd_server.h"

#include "gtest/gtest.h"

namespace davix {
namespace root {
namespace {

TreeSpec SmallSpec() {
  TreeSpec spec;
  spec.n_events = 1000;
  spec.events_per_basket = 100;
  spec.codec = compress::CodecType::kDlz;
  spec.branches = {{"id", 8}, {"pt", 4}, {"cells", 64}};
  return spec;
}

/// One-shot gate the fake transports block on.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void WaitOpen() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// In-memory transport whose async vectored reads complete only once the
/// test opens the gate. PReadVecAsync returns immediately (the "issue"
/// side is non-blocking); Wait blocks on the gate, then serves bytes.
/// Started-call and byte accounting let tests prove overlap and exact
/// byte volumes without any sleeps.
class LatchVecFile : public RandomAccessFile {
 public:
  explicit LatchVecFile(std::string data) : data_(std::move(data)) {}

  uint64_t Size() const override { return data_.size(); }

  Result<std::string> PRead(uint64_t offset, uint64_t length) override {
    bytes_requested_ += length;
    return Slice(offset, length);
  }

  Result<std::vector<std::string>> PReadVec(
      const std::vector<http::ByteRange>& ranges) override {
    ++sync_vec_calls_;
    std::vector<std::string> out;
    for (const http::ByteRange& r : ranges) {
      bytes_requested_ += r.length;
      DAVIX_ASSIGN_OR_RETURN(std::string blob, Slice(r.offset, r.length));
      out.push_back(std::move(blob));
    }
    return out;
  }

  bool SupportsAsyncVec() const override { return true; }

  std::unique_ptr<PendingVecRead> PReadVecAsync(
      const std::vector<http::ByteRange>& ranges) override {
    ++async_calls_started_;
    uint64_t bytes = 0;
    for (const http::ByteRange& r : ranges) bytes += r.length;
    last_async_bytes_ = bytes;
    class Pending : public PendingVecRead {
     public:
      Pending(LatchVecFile* file, std::vector<http::ByteRange> ranges)
          : file_(file), ranges_(std::move(ranges)) {}
      Result<std::vector<std::string>> Wait() override {
        file_->gate_.WaitOpen();
        std::vector<std::string> out;
        for (const http::ByteRange& r : ranges_) {
          file_->bytes_requested_ += r.length;
          DAVIX_ASSIGN_OR_RETURN(std::string blob,
                                 file_->Slice(r.offset, r.length));
          out.push_back(std::move(blob));
        }
        return out;
      }

     private:
      LatchVecFile* file_;
      std::vector<http::ByteRange> ranges_;
    };
    return std::make_unique<Pending>(this, ranges);
  }

  void OpenGate() { gate_.Open(); }
  uint64_t async_calls_started() const { return async_calls_started_; }
  uint64_t last_async_bytes() const { return last_async_bytes_; }
  uint64_t sync_vec_calls() const { return sync_vec_calls_; }
  uint64_t bytes_requested() const { return bytes_requested_; }

 private:
  Result<std::string> Slice(uint64_t offset, uint64_t length) const {
    if (offset > data_.size()) return Status::InvalidArgument("offset > size");
    return data_.substr(offset, length);
  }

  std::string data_;
  Gate gate_;
  std::atomic<uint64_t> async_calls_started_{0};
  std::atomic<uint64_t> last_async_bytes_{0};
  std::atomic<uint64_t> sync_vec_calls_{0};
  std::atomic<uint64_t> bytes_requested_{0};
};

/// Transport whose async reads (and optionally sync reads) fail while
/// `break_async` / `break_sync` are set. Serves from memory otherwise.
class FlakyVecFile : public RandomAccessFile {
 public:
  explicit FlakyVecFile(std::string data) : data_(std::move(data)) {}

  uint64_t Size() const override { return data_.size(); }
  Result<std::string> PRead(uint64_t offset, uint64_t length) override {
    return data_.substr(std::min<uint64_t>(offset, data_.size()), length);
  }

  Result<std::vector<std::string>> PReadVec(
      const std::vector<http::ByteRange>& ranges) override {
    if (break_sync) return Status::ConnectionFailed("injected sync failure");
    std::vector<std::string> out;
    for (const http::ByteRange& r : ranges) {
      out.push_back(data_.substr(r.offset, r.length));
    }
    return out;
  }

  bool SupportsAsyncVec() const override { return true; }

  std::unique_ptr<PendingVecRead> PReadVecAsync(
      const std::vector<http::ByteRange>& ranges) override {
    class Pending : public PendingVecRead {
     public:
      Pending(FlakyVecFile* file, std::vector<http::ByteRange> ranges)
          : file_(file), ranges_(std::move(ranges)) {}
      Result<std::vector<std::string>> Wait() override {
        if (file_->break_async) {
          return Status::ConnectionFailed("injected async failure");
        }
        return file_->PReadVec(ranges_);
      }

     private:
      FlakyVecFile* file_;
      std::vector<http::ByteRange> ranges_;
    };
    return std::make_unique<Pending>(this, ranges);
  }

  bool break_async = false;
  bool break_sync = false;

 private:
  std::string data_;
};

uint64_t ClusterStoredBytes(const TreeIndex& index, uint64_t first_row,
                            uint32_t cluster_rows) {
  uint64_t total = 0;
  uint64_t last = std::min<uint64_t>(first_row + cluster_rows,
                                     index.spec.BasketCountPerBranch());
  for (uint64_t row = first_row; row < last; ++row) {
    for (const auto& branch : index.baskets) total += branch[row].stored_length;
  }
  return total;
}

// ----------------------------------------------------------- pipelining

TEST(TreeCachePipelineTest, OverlapsFetchWithConsumption) {
  TreeSpec spec = SmallSpec();
  std::string tree = BuildTreeFile(spec, 11);
  LatchVecFile file(tree);
  ASSERT_OK_AND_ASSIGN(TreeReader reader, TreeReader::Open(&file));

  TreeCacheConfig config;
  config.cluster_rows = 2;
  config.async_prefetch = true;
  config.prefetch_pipeline_clusters = 2;
  config.prefetch_window_bytes = 0;  // depth-bounded only
  TreeCache cache(&reader, {}, config);

  // Cluster 0 loads synchronously; the top-up then issues the next two
  // clusters. GetBasket returning while the gate is still closed proves
  // the issue side never blocks on completion — the fetches are in
  // flight while the caller is free to compute.
  ASSERT_OK(cache.GetBasket(0, 0).status());
  EXPECT_EQ(file.async_calls_started(), 2u);
  EXPECT_EQ(cache.stats().async_prefetches, 0u);

  file.OpenGate();
  // 10 rows / 2 per cluster = clusters 0..4; read everything.
  for (uint64_t row = 0; row < spec.BasketCountPerBranch(); ++row) {
    for (size_t b = 0; b < spec.branches.size(); ++b) {
      ASSERT_OK(cache.GetBasket(b, row).status());
    }
  }
  EXPECT_EQ(cache.stats().async_prefetches, 4u);  // clusters 1..4
  EXPECT_EQ(cache.stats().prefetch_discards, 0u);
  EXPECT_EQ(file.async_calls_started(), 4u);
}

TEST(TreeCachePipelineTest, WindowBudgetCapsEarlyBytesWithoutRefetch) {
  TreeSpec spec = SmallSpec();
  std::string tree = BuildTreeFile(spec, 12);
  ASSERT_OK_AND_ASSIGN(TreeIndex index, ParseTreeIndex(tree));
  uint64_t cluster_bytes = ClusterStoredBytes(index, 2, 2);

  auto run = [&](bool async, uint64_t window) {
    LatchVecFile file(tree);
    file.OpenGate();
    struct Out {
      TreeCacheStats stats;
      uint64_t transport_bytes;
    } out;
    {
      auto reader = TreeReader::Open(&file);
      EXPECT_TRUE(reader.ok());
      TreeCacheConfig config;
      config.cluster_rows = 2;
      config.async_prefetch = async;
      config.prefetch_pipeline_clusters = 3;
      config.prefetch_window_bytes = window;
      TreeCache cache(&*reader, {}, config);
      for (uint64_t row = 0; row < spec.BasketCountPerBranch(); ++row) {
        for (size_t b = 0; b < spec.branches.size(); ++b) {
          EXPECT_TRUE(cache.GetBasket(b, row).ok());
        }
      }
      out.stats = cache.stats();
    }
    out.transport_bytes = file.bytes_requested();
    return out;
  };

  auto sync_run = run(false, 0);
  // Window smaller than one cluster: every prefetch is a truncated
  // prefix, the remainder arrives synchronously.
  auto capped = run(true, cluster_bytes / 2);

  EXPECT_GT(capped.stats.bytes_prefetched_early, 0u);
  EXPECT_LT(capped.stats.bytes_prefetched_early, capped.stats.bytes_fetched);
  // The budget is a scheduling constraint, not a data-volume one: byte
  // volume is identical to the sync mode, at the cache stats level and
  // at the transport level (nothing fetched twice, nothing skipped).
  EXPECT_EQ(capped.stats.bytes_fetched, sync_run.stats.bytes_fetched);
  EXPECT_EQ(capped.transport_bytes, sync_run.transport_bytes);

  // Unlimited window: everything after cluster 0 arrives early.
  auto open = run(true, 0);
  EXPECT_EQ(open.stats.bytes_fetched, sync_run.stats.bytes_fetched);
  EXPECT_EQ(open.transport_bytes, sync_run.transport_bytes);
  EXPECT_GT(open.stats.bytes_prefetched_early,
            capped.stats.bytes_prefetched_early);
}

TEST(TreeCachePipelineTest, TruncatedPrefixOnlyIssuedAtPipelineFront) {
  TreeSpec spec = SmallSpec();
  std::string tree = BuildTreeFile(spec, 13);
  ASSERT_OK_AND_ASSIGN(TreeIndex index, ParseTreeIndex(tree));
  uint64_t cluster_bytes = ClusterStoredBytes(index, 2, 2);

  LatchVecFile file(tree);
  file.OpenGate();
  ASSERT_OK_AND_ASSIGN(TreeReader reader, TreeReader::Open(&file));

  TreeCacheConfig config;
  config.cluster_rows = 2;
  config.async_prefetch = true;
  config.prefetch_pipeline_clusters = 3;
  // Room for one full cluster but not two: the pipeline must hold one
  // full-cluster fetch and stop, instead of queueing a deep prefix that
  // would stall the window behind a guaranteed synchronous remainder.
  config.prefetch_window_bytes = cluster_bytes + cluster_bytes / 4;
  TreeCache cache(&reader, {}, config);

  ASSERT_OK(cache.GetBasket(0, 0).status());
  EXPECT_EQ(file.async_calls_started(), 1u);
  EXPECT_EQ(file.last_async_bytes(),
            ClusterStoredBytes(index, 2, 2));  // full cluster 1, no prefix

  for (uint64_t row = 0; row < spec.BasketCountPerBranch(); ++row) {
    for (size_t b = 0; b < spec.branches.size(); ++b) {
      ASSERT_OK(cache.GetBasket(b, row).status());
    }
  }
  EXPECT_EQ(cache.stats().async_prefetches, 4u);
  EXPECT_EQ(cache.stats().bytes_prefetched_early,
            cache.stats().bytes_fetched -
                ClusterStoredBytes(index, 0, 2));  // all but cluster 0 early
}

TEST(TreeCachePipelineTest, LatencyLatchEngagesOnSlowSyncFetch) {
  TreeSpec spec = SmallSpec();
  std::string tree = BuildTreeFile(spec, 14);

  /// Sync vectored reads take a measurable beat; async ones are instant.
  class SlowSyncFile : public LatchVecFile {
   public:
    explicit SlowSyncFile(std::string data) : LatchVecFile(std::move(data)) {
      OpenGate();
    }
    Result<std::vector<std::string>> PReadVec(
        const std::vector<http::ByteRange>& ranges) override {
      SleepForMicros(20'000);
      return LatchVecFile::PReadVec(ranges);
    }
  };

  auto run = [&](int64_t threshold_micros) {
    SlowSyncFile file(tree);
    auto reader = TreeReader::Open(&file);
    EXPECT_TRUE(reader.ok());
    TreeCacheConfig config;
    config.cluster_rows = 2;
    config.async_prefetch = true;
    config.prefetch_pipeline_clusters = 2;
    config.prefetch_window_bytes = 0;
    config.prefetch_latency_threshold_micros = threshold_micros;
    TreeCache cache(&*reader, {}, config);
    for (uint64_t row = 0; row < spec.BasketCountPerBranch(); ++row) {
      for (size_t b = 0; b < spec.branches.size(); ++b) {
        EXPECT_TRUE(cache.GetBasket(b, row).ok());
      }
    }
    return cache.stats().async_prefetches;
  };

  // Cluster 0's synchronous fetch sleeps 20 ms: a 5 ms threshold latches
  // the high-latency path, a 60 s threshold never does.
  EXPECT_GT(run(5'000), 0u);
  EXPECT_EQ(run(60'000'000), 0u);
}

TEST(TreeCachePipelineTest, SeekDiscardsStalePrefetchesAndRecovers) {
  TreeSpec spec = SmallSpec();
  std::string tree = BuildTreeFile(spec, 15);
  MemoryFile truth_file(tree);
  ASSERT_OK_AND_ASSIGN(TreeReader truth_reader, TreeReader::Open(&truth_file));
  TreeCache truth(&truth_reader, {});

  LatchVecFile file(tree);
  file.OpenGate();
  ASSERT_OK_AND_ASSIGN(TreeReader reader, TreeReader::Open(&file));
  TreeCacheConfig config;
  config.cluster_rows = 2;
  config.async_prefetch = true;
  config.prefetch_pipeline_clusters = 2;
  config.prefetch_window_bytes = 0;
  TreeCache cache(&reader, {}, config);

  // Sequential start: clusters 1 and 2 go in flight...
  ASSERT_OK(cache.GetBasket(0, 0).status());
  EXPECT_EQ(file.async_calls_started(), 2u);
  // ...then a seek to cluster 4 invalidates both.
  ASSERT_OK_AND_ASSIGN(auto basket, cache.GetBasket(1, 8));
  EXPECT_EQ(cache.stats().prefetch_discards, 2u);

  ASSERT_OK_AND_ASSIGN(auto expected, truth.GetBasket(1, 8));
  EXPECT_EQ(*basket, *expected);
  // Discarded bytes are not billed as fetched.
  ASSERT_OK_AND_ASSIGN(TreeIndex index, ParseTreeIndex(tree));
  EXPECT_EQ(cache.stats().bytes_fetched,
            ClusterStoredBytes(index, 0, 2) + ClusterStoredBytes(index, 8, 2));
}

TEST(TreeCachePipelineTest, DestructorDrainsInFlightPrefetches) {
  TreeSpec spec = SmallSpec();
  std::string tree = BuildTreeFile(spec, 16);
  LatchVecFile file(tree);
  file.OpenGate();
  ASSERT_OK_AND_ASSIGN(TreeReader reader, TreeReader::Open(&file));
  {
    TreeCacheConfig config;
    config.cluster_rows = 2;
    config.async_prefetch = true;
    config.prefetch_pipeline_clusters = 2;
    config.prefetch_window_bytes = 0;
    TreeCache cache(&reader, {}, config);
    ASSERT_OK(cache.GetBasket(0, 0).status());
    EXPECT_EQ(file.async_calls_started(), 2u);
    // Destroyed with two prefetches in flight: both must be waited out
    // (ASan would flag the use-after-free if they outlived the cache).
  }
  EXPECT_EQ(file.async_calls_started(), 2u);
}

TEST(TreeCachePipelineTest, PrefetchFailureFallsBackSilently) {
  TreeSpec spec = SmallSpec();
  std::string tree = BuildTreeFile(spec, 17);
  MemoryFile truth_file(tree);
  ASSERT_OK_AND_ASSIGN(AnalysisReport truth, [&] {
    AnalysisConfig c;
    c.compute_iterations_per_event = 0;
    return RunAnalysis(&truth_file, c);
  }());

  FlakyVecFile file(tree);
  file.break_async = true;  // every prefetch errors in flight
  AnalysisConfig config;
  config.compute_iterations_per_event = 0;
  config.cache.cluster_rows = 2;
  config.cache.async_prefetch = true;
  config.cache.prefetch_window_bytes = 0;
  ASSERT_OK_AND_ASSIGN(AnalysisReport report, RunAnalysis(&file, config));
  // The sync fallback refetched every failed cluster: same answer, no
  // prefetch consumed, nothing surfaced to the caller.
  EXPECT_EQ(report.physics_sum, truth.physics_sum);
  EXPECT_EQ(report.io.async_prefetches, 0u);
}

TEST(TreeCachePipelineTest, ErrorSurfacesOnceThenRecovers) {
  TreeSpec spec = SmallSpec();
  std::string tree = BuildTreeFile(spec, 18);
  FlakyVecFile file(tree);
  ASSERT_OK_AND_ASSIGN(TreeReader reader, TreeReader::Open(&file));
  TreeCacheConfig config;
  config.cluster_rows = 2;
  config.async_prefetch = true;
  config.prefetch_pipeline_clusters = 2;
  config.prefetch_window_bytes = 0;
  TreeCache cache(&reader, {}, config);

  ASSERT_OK(cache.GetBasket(0, 0).status());

  // Both the in-flight prefetch and the sync fallback fail: the error
  // reaches the caller exactly where it happened.
  file.break_async = true;
  file.break_sync = true;
  EXPECT_FALSE(cache.GetBasket(0, 2).ok());

  // Transport heals: the same basket is retried and served; the cache
  // carries no poisoned state from the failed load.
  file.break_async = false;
  file.break_sync = false;
  ASSERT_OK_AND_ASSIGN(auto basket, cache.GetBasket(0, 2));
  MemoryFile truth_file(tree);
  ASSERT_OK_AND_ASSIGN(TreeReader truth_reader, TreeReader::Open(&truth_file));
  TreeCache truth(&truth_reader, {});
  ASSERT_OK_AND_ASSIGN(auto expected, truth.GetBasket(0, 2));
  EXPECT_EQ(*basket, *expected);
}

// ------------------------------------------- davix async under faults

TEST(DavixAsyncFaultTest, ByteExactVersusSyncUnderServerFaults) {
  TreeSpec spec = SmallSpec();
  std::string tree = BuildTreeFile(spec, 19);
  MemoryFile local(tree);
  AnalysisConfig base;
  base.compute_iterations_per_event = 0;
  base.cache.cluster_rows = 2;
  ASSERT_OK_AND_ASSIGN(AnalysisReport truth, RunAnalysis(&local, base));

  auto run = [&](bool async) {
    testing::TestStorageServer server = testing::StartStorageServer();
    server.store->Put("/tree.rnt", tree);
    core::Context context;
    core::RequestParams params;
    params.metalink_mode = core::MetalinkMode::kDisabled;
    params.retry_jitter_seed = 7;
    // Worst case all three injected faults land on one request's
    // attempt chain; give the retry loop room for that plus one.
    params.max_retries = 4;
    auto file = DavixRandomAccessFile::Open(
        &context, server.UrlFor("/tree.rnt"), params);
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    // Arm the faults after Open's stat: two mid-body truncations and one
    // paced 503 (Retry-After), absorbed by the retry machinery underneath
    // the prefetcher. A bare 503 would be handed back to the caller for
    // fail-over (disabled here), so the injected one advertises a wait.
    server.server->faults().AddRule(
        {"/tree.rnt", netsim::FaultAction::kTruncateBody, 1.0, 2, 0});
    netsim::FaultRule paced;
    paced.path_prefix = "/tree.rnt";
    paced.action = netsim::FaultAction::kRetryAfter;
    paced.max_hits = 1;
    paced.retry_after_seconds = 1;
    server.server->faults().AddRule(paced);
    AnalysisConfig config = base;
    config.cache.async_prefetch = async;
    config.cache.prefetch_window_bytes = 0;
    auto report = RunAnalysis(file->get(), config);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return *report;
  };

  AnalysisReport sync_report = run(false);
  AnalysisReport async_report = run(true);
  EXPECT_EQ(sync_report.physics_sum, truth.physics_sum);
  EXPECT_EQ(async_report.physics_sum, truth.physics_sum);
  EXPECT_EQ(async_report.io.bytes_fetched, sync_report.io.bytes_fetched);
  EXPECT_GT(async_report.io.async_prefetches, 0u);
}

// ------------------------------------------------- storage adapter seam

class StorageAdapterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = SmallSpec();
    tree_ = BuildTreeFile(spec_, 21);
    server_ = testing::StartStorageServer();
    server_.store->Put("/tree.rnt", tree_);
    params_.context = &context_;
    params_.request.metalink_mode = core::MetalinkMode::kDisabled;
  }

  std::string HostPort() const {
    return "127.0.0.1:" + std::to_string(server_.server->port());
  }

  TreeSpec spec_;
  std::string tree_;
  testing::TestStorageServer server_;
  core::Context context_;
  StorageOpenParams params_;
};

TEST_F(StorageAdapterTest, UnknownSchemeNamesRegisteredOnes) {
  auto result = OpenStorage("gopher://host/path", params_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(result.status().ToString().find("davix"), std::string::npos);
  EXPECT_NE(result.status().ToString().find("xrd"), std::string::npos);
  EXPECT_FALSE(OpenStorage("/no/scheme/at/all", params_).ok());
}

TEST_F(StorageAdapterTest, DavixSchemeOpensAndReads) {
  ASSERT_OK_AND_ASSIGN(auto file,
                       OpenStorage("davix://" + HostPort() + "/tree.rnt",
                                   params_));
  EXPECT_EQ(file->Size(), tree_.size());
  EXPECT_TRUE(file->SupportsAsyncVec());
  ASSERT_OK_AND_ASSIGN(std::string head, file->PRead(0, 4));
  EXPECT_EQ(head, tree_.substr(0, 4));
}

TEST_F(StorageAdapterTest, DavixSchemeRequiresContext) {
  StorageOpenParams no_context;
  EXPECT_FALSE(
      OpenStorage("davix://" + HostPort() + "/tree.rnt", no_context).ok());
}

TEST_F(StorageAdapterTest, MuxSchemeRunsOverFramedTransport) {
  muxhttp::MuxServerConfig config;
  auto mux = muxhttp::MuxServer::Start(config, server_.router);
  ASSERT_TRUE(mux.ok()) << mux.status().ToString();
  std::string url = "davix+mux://127.0.0.1:" +
                    std::to_string((*mux)->port()) + "/tree.rnt";
  ASSERT_OK_AND_ASSIGN(auto file, OpenStorage(url, params_));
  ASSERT_OK_AND_ASSIGN(AnalysisReport report, [&] {
    AnalysisConfig c;
    c.compute_iterations_per_event = 0;
    return RunAnalysis(file.get(), c);
  }());
  MemoryFile local(tree_);
  ASSERT_OK_AND_ASSIGN(AnalysisReport truth, [&] {
    AnalysisConfig c;
    c.compute_iterations_per_event = 0;
    return RunAnalysis(&local, c);
  }());
  EXPECT_EQ(report.physics_sum, truth.physics_sum);
  (*mux)->Stop();
}

TEST_F(StorageAdapterTest, XrdSchemeOpensAndRejectsMalformedUrls) {
  auto xrd = xrootd::XrdServer::Start({}, server_.store);
  ASSERT_TRUE(xrd.ok());
  std::string good =
      "xrd://127.0.0.1:" + std::to_string((*xrd)->port()) + "/tree.rnt";
  {
    ASSERT_OK_AND_ASSIGN(auto file, OpenStorage(good, params_));
    EXPECT_EQ(file->Size(), tree_.size());
    EXPECT_TRUE(file->SupportsAsyncVec());
    // The returned file owns its client: reading through it works with
    // no other handle kept alive.
    ASSERT_OK_AND_ASSIGN(std::string head, file->PRead(0, 4));
    EXPECT_EQ(head, tree_.substr(0, 4));
  }
  EXPECT_FALSE(OpenStorage("xrd://127.0.0.1/tree.rnt", params_).ok());
  EXPECT_FALSE(OpenStorage("xrd://127.0.0.1:9999", params_).ok());
  EXPECT_FALSE(OpenStorage("xrd://127.0.0.1:notaport/f", params_).ok());
  (*xrd)->Stop();
}

TEST_F(StorageAdapterTest, CustomSchemeRegistersAndResolves) {
  StorageAdapterRegistry registry;
  std::string blob = "hello adapter";
  registry.Register("mem", [blob](const std::string& rest,
                                  const StorageOpenParams&)
                               -> Result<std::unique_ptr<RandomAccessFile>> {
    EXPECT_EQ(rest, "ignored/path");
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<MemoryFile>(blob));
  });
  ASSERT_OK_AND_ASSIGN(auto file,
                       registry.Open("mem://ignored/path", params_));
  EXPECT_EQ(file->Size(), blob.size());
  auto schemes = registry.Schemes();
  ASSERT_EQ(schemes.size(), 1u);
  EXPECT_EQ(schemes[0], "mem");
}

TEST_F(StorageAdapterTest, DefaultRegistryListsBuiltinSchemes) {
  auto schemes = StorageAdapterRegistry::Default().Schemes();
  auto has = [&](const std::string& s) {
    return std::find(schemes.begin(), schemes.end(), s) != schemes.end();
  };
  EXPECT_TRUE(has("davix"));
  EXPECT_TRUE(has("davix+mux"));
  EXPECT_TRUE(has("http"));
  EXPECT_TRUE(has("xrd"));
}

TEST_F(StorageAdapterTest, RunAnalysisOnUrlMatchesLocalTruth) {
  MemoryFile local(tree_);
  AnalysisConfig config;
  config.compute_iterations_per_event = 0;
  config.cache.cluster_rows = 2;
  config.cache.async_prefetch = true;
  config.cache.prefetch_window_bytes = 0;
  ASSERT_OK_AND_ASSIGN(AnalysisReport truth, RunAnalysis(&local, config));
  ASSERT_OK_AND_ASSIGN(
      AnalysisReport remote,
      RunAnalysisOnUrl("davix://" + HostPort() + "/tree.rnt", config,
                       params_));
  EXPECT_EQ(remote.physics_sum, truth.physics_sum);
  EXPECT_EQ(remote.events_processed, truth.events_processed);
  EXPECT_GT(remote.io.async_prefetches, 0u);
}

}  // namespace
}  // namespace root
}  // namespace davix
