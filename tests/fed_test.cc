#include "core/context.h"
#include "core/http_client.h"
#include "fed/federation_handler.h"
#include "fed/replica_catalog.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace fed {
namespace {

// --------------------------------------------------------- ReplicaCatalog

TEST(ReplicaCatalogTest, AddLookupRemove) {
  ReplicaCatalog catalog;
  catalog.AddReplica("/d/f.root", "http://a/f.root", 2);
  catalog.AddReplica("/d/f.root", "http://b/f.root", 1);
  ASSERT_OK_AND_ASSIGN(auto entry, catalog.Lookup("/d/f.root"));
  EXPECT_EQ(entry.name, "f.root");
  ASSERT_EQ(entry.replicas.size(), 2u);
  EXPECT_EQ(entry.SortedReplicas()[0].url, "http://b/f.root");

  EXPECT_TRUE(catalog.RemoveReplica("/d/f.root", "http://a/f.root"));
  EXPECT_FALSE(catalog.RemoveReplica("/d/f.root", "http://a/f.root"));
  ASSERT_OK_AND_ASSIGN(entry, catalog.Lookup("/d/f.root"));
  EXPECT_EQ(entry.replicas.size(), 1u);

  catalog.Remove("/d/f.root");
  EXPECT_FALSE(catalog.Lookup("/d/f.root").ok());
}

TEST(ReplicaCatalogTest, ReaddUpdatesPriority) {
  ReplicaCatalog catalog;
  catalog.AddReplica("/f", "http://a/f", 5);
  catalog.AddReplica("/f", "http://a/f", 1);
  ASSERT_OK_AND_ASSIGN(auto entry, catalog.Lookup("/f"));
  ASSERT_EQ(entry.replicas.size(), 1u);
  EXPECT_EQ(entry.replicas[0].priority, 1);
}

TEST(ReplicaCatalogTest, MetaRecorded) {
  ReplicaCatalog catalog;
  catalog.AddReplica("/f", "http://a/f", 1);
  catalog.SetFileMeta("/f", 12345, "00ff");
  ASSERT_OK_AND_ASSIGN(auto entry, catalog.Lookup("/f"));
  EXPECT_EQ(entry.size, 12345u);
  EXPECT_EQ(entry.md5, "00ff");
}

TEST(ReplicaCatalogTest, NormalisesPaths) {
  ReplicaCatalog catalog;
  catalog.AddReplica("f", "http://a/f", 1);
  EXPECT_TRUE(catalog.Lookup("/f").ok());
  catalog.AddReplica("/g/", "http://a/g", 1);
  EXPECT_TRUE(catalog.Lookup("/g").ok());
  EXPECT_EQ(catalog.Paths(), (std::vector<std::string>{"/f", "/g"}));
}

TEST(ReplicaCatalogTest, EmptyReplicaListIsNotFound) {
  ReplicaCatalog catalog;
  catalog.AddReplica("/f", "http://a/f", 1);
  catalog.RemoveReplica("/f", "http://a/f");
  EXPECT_FALSE(catalog.Lookup("/f").ok());
}

TEST(ReplicaCatalogTest, PriorityTiesOrderedByUrl) {
  // Same priorities registered in two different orders must come back
  // identically: priority ascending, URL breaking ties.
  ReplicaCatalog forward;
  forward.AddReplica("/f", "http://c/f", 1);
  forward.AddReplica("/f", "http://a/f", 1);
  forward.AddReplica("/f", "http://b/f", 0);
  ReplicaCatalog backward;
  backward.AddReplica("/f", "http://a/f", 1);
  backward.AddReplica("/f", "http://b/f", 0);
  backward.AddReplica("/f", "http://c/f", 1);

  ASSERT_OK_AND_ASSIGN(auto lhs, forward.Lookup("/f"));
  ASSERT_OK_AND_ASSIGN(auto rhs, backward.Lookup("/f"));
  ASSERT_EQ(lhs.replicas.size(), 3u);
  ASSERT_EQ(rhs.replicas.size(), 3u);
  for (size_t i = 0; i < lhs.replicas.size(); ++i) {
    EXPECT_EQ(lhs.replicas[i].url, rhs.replicas[i].url);
    EXPECT_EQ(lhs.replicas[i].priority, rhs.replicas[i].priority);
  }
  EXPECT_EQ(lhs.replicas[0].url, "http://b/f");
  EXPECT_EQ(lhs.replicas[1].url, "http://a/f");
  EXPECT_EQ(lhs.replicas[2].url, "http://c/f");
}

// ------------------------------------------------------ FederationHandler

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_shared<ReplicaCatalog>();
    catalog_->AddReplica("/data/f.root", "http://replica-b:80/f.root", 2);
    catalog_->AddReplica("/data/f.root", "http://replica-a:80/f.root", 1);
    catalog_->SetFileMeta("/data/f.root", 4096, "");
    handler_ = std::make_shared<FederationHandler>(catalog_);
    router_ = std::make_shared<httpd::Router>();
    handler_->Register(router_.get(), "/fed");
    auto server = httpd::HttpServer::Start({}, router_);
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
    context_ = std::make_unique<core::Context>();
    client_ = std::make_unique<core::HttpClient>(context_.get());
    params_.follow_redirects = false;  // inspect redirects directly
  }

  Result<core::HttpClient::Exchange> Get(const std::string& path,
                                         const http::HeaderMap* headers =
                                             nullptr) {
    core::RequestParams params = params_;
    return client_->Execute(*Uri::Parse(server_->BaseUrl() + path),
                            http::Method::kGet, params, "", headers);
  }

  std::shared_ptr<ReplicaCatalog> catalog_;
  std::shared_ptr<FederationHandler> handler_;
  std::shared_ptr<httpd::Router> router_;
  std::unique_ptr<httpd::HttpServer> server_;
  std::unique_ptr<core::Context> context_;
  std::unique_ptr<core::HttpClient> client_;
  core::RequestParams params_;
};

TEST_F(FederationTest, AcceptHeaderYieldsMetalink) {
  http::HeaderMap headers;
  headers.Set("Accept", std::string(metalink::kMetalinkContentType));
  ASSERT_OK_AND_ASSIGN(auto exchange, Get("/fed/data/f.root", &headers));
  EXPECT_EQ(exchange.response.status_code, 200);
  EXPECT_EQ(exchange.response.headers.Get("Content-Type"),
            std::string(metalink::kMetalinkContentType));
  ASSERT_OK_AND_ASSIGN(auto parsed,
                       metalink::ParseMetalink(exchange.response.body));
  ASSERT_EQ(parsed.replicas.size(), 2u);
  EXPECT_EQ(parsed.SortedReplicas()[0].url, "http://replica-a:80/f.root");
  EXPECT_EQ(parsed.size, 4096u);
  EXPECT_EQ(handler_->metalinks_served(), 1u);
}

TEST_F(FederationTest, QueryParameterYieldsMetalink) {
  ASSERT_OK_AND_ASSIGN(auto exchange, Get("/fed/data/f.root?metalink"));
  EXPECT_EQ(exchange.response.status_code, 200);
  EXPECT_TRUE(exchange.response.body.find("<metalink") != std::string::npos ||
              exchange.response.body.find(":metalink") != std::string::npos);
}

TEST_F(FederationTest, Meta4SuffixYieldsMetalink) {
  ASSERT_OK_AND_ASSIGN(auto exchange, Get("/fed/data/f.root.meta4"));
  EXPECT_EQ(exchange.response.status_code, 200);
  ASSERT_OK_AND_ASSIGN(auto parsed,
                       metalink::ParseMetalink(exchange.response.body));
  EXPECT_EQ(parsed.replicas.size(), 2u);
}

TEST_F(FederationTest, PlainGetRedirectsToBestReplica) {
  ASSERT_OK_AND_ASSIGN(auto exchange, Get("/fed/data/f.root"));
  EXPECT_EQ(exchange.response.status_code, 302);
  EXPECT_EQ(exchange.response.headers.Get("Location"),
            "http://replica-a:80/f.root");
  EXPECT_EQ(handler_->redirects_served(), 1u);
}

TEST_F(FederationTest, UnknownResourceIs404) {
  ASSERT_OK_AND_ASSIGN(auto exchange, Get("/fed/unknown"));
  EXPECT_EQ(exchange.response.status_code, 404);
}

TEST_F(FederationTest, CatalogHitAndMissCountersTrackLookups) {
  EXPECT_EQ(handler_->catalog_hits(), 0u);
  EXPECT_EQ(handler_->catalog_misses(), 0u);
  ASSERT_OK_AND_ASSIGN(auto hit, Get("/fed/data/f.root"));
  EXPECT_EQ(hit.response.status_code, 302);
  EXPECT_EQ(handler_->catalog_hits(), 1u);
  EXPECT_EQ(handler_->catalog_misses(), 0u);
  ASSERT_OK_AND_ASSIGN(auto miss, Get("/fed/not-there"));
  EXPECT_EQ(miss.response.status_code, 404);
  ASSERT_OK_AND_ASSIGN(auto metalink_hit, Get("/fed/data/f.root?metalink"));
  EXPECT_EQ(metalink_hit.response.status_code, 200);
  EXPECT_EQ(handler_->catalog_hits(), 2u);
  EXPECT_EQ(handler_->catalog_misses(), 1u);
}

TEST_F(FederationTest, NonGetRejected) {
  http::HeaderMap headers;
  headers.Set("Accept", std::string(metalink::kMetalinkContentType));
  ASSERT_OK_AND_ASSIGN(
      auto exchange,
      client_->Execute(*Uri::Parse(server_->BaseUrl() + "/fed/data/f.root"),
                       http::Method::kPut, params_, "body", &headers));
  EXPECT_EQ(exchange.response.status_code, 405);
}

TEST_F(FederationTest, CatalogChangesVisibleImmediately) {
  catalog_->AddReplica("/data/f.root", "http://replica-c:80/f.root", 0);
  ASSERT_OK_AND_ASSIGN(auto exchange, Get("/fed/data/f.root"));
  EXPECT_EQ(exchange.response.headers.Get("Location"),
            "http://replica-c:80/f.root");
}

}  // namespace
}  // namespace fed
}  // namespace davix
