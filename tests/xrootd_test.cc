#include <future>
#include <thread>

#include "common/rng.h"
#include "httpd/object_store.h"
#include "test_util.h"
#include "xrootd/frame.h"
#include "xrootd/readahead.h"
#include "xrootd/xrd_client.h"
#include "xrootd/xrd_server.h"

#include "gtest/gtest.h"

namespace davix {
namespace xrootd {
namespace {

// ------------------------------------------------------------------ Frame

TEST(FrameTest, SerializeReadRoundTrip) {
  FrameHeader header;
  header.stream_id = 0xBEEF;
  header.opcode = static_cast<uint16_t>(Opcode::kRead);
  header.arg = 0x0123456789ABCDEFull;
  std::string payload = "hello frame";
  std::string wire = SerializeFrame(header, payload);
  EXPECT_EQ(wire.size(), kFrameHeaderSize + payload.size());

  auto pair = testing::MakeSocketPair();
  ASSERT_OK(pair.server.WriteAll(wire));
  net::BufferedReader reader(&pair.client, 1'000'000);
  ASSERT_OK_AND_ASSIGN(Frame frame, ReadFrame(&reader));
  EXPECT_EQ(frame.header.stream_id, header.stream_id);
  EXPECT_EQ(frame.header.opcode, header.opcode);
  EXPECT_EQ(frame.header.arg, header.arg);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, RejectsOversizedPayloadLength) {
  FrameHeader header;
  std::string wire = SerializeFrame(header, "");
  // Corrupt the length field to an absurd value.
  wire[4] = wire[5] = wire[6] = wire[7] = static_cast<char>(0xFF);
  auto pair = testing::MakeSocketPair();
  ASSERT_OK(pair.server.WriteAll(wire));
  net::BufferedReader reader(&pair.client, 1'000'000);
  EXPECT_FALSE(ReadFrame(&reader).ok());
}

TEST(FrameTest, ReadPayloadCodec) {
  std::string payload = EncodeReadPayload(7, 4096);
  ASSERT_OK_AND_ASSIGN(auto decoded, DecodeReadPayload(payload));
  EXPECT_EQ(decoded.first, 7u);
  EXPECT_EQ(decoded.second, 4096u);
  EXPECT_FALSE(DecodeReadPayload("short").ok());
}

TEST(FrameTest, ReadVectorPayloadCodec) {
  std::vector<http::ByteRange> ranges = {{0, 10}, {1 << 20, 4096}, {7, 1}};
  std::string payload = EncodeReadVectorPayload(42, ranges);
  ASSERT_OK_AND_ASSIGN(auto decoded, DecodeReadVectorPayload(payload));
  EXPECT_EQ(decoded.first, 42u);
  EXPECT_EQ(decoded.second, ranges);
  EXPECT_FALSE(DecodeReadVectorPayload(payload.substr(0, 9)).ok());
}

// ---------------------------------------------------------- client/server

class XrdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<httpd::ObjectStore>();
    Rng rng(2024);
    content_ = rng.Bytes(512 * 1024);
    store_->Put("/data.bin", content_);
    auto server = XrdServer::Start({}, store_);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    auto client = XrdClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(*client);
    ASSERT_OK(client_->Login());
  }

  std::shared_ptr<httpd::ObjectStore> store_;
  std::string content_;
  std::unique_ptr<XrdServer> server_;
  std::unique_ptr<XrdClient> client_;
};

TEST_F(XrdTest, OpenStatReadClose) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  EXPECT_EQ(info.size, content_.size());
  ASSERT_OK_AND_ASSIGN(uint64_t size, client_->StatSize("/data.bin"));
  EXPECT_EQ(size, content_.size());
  ASSERT_OK_AND_ASSIGN(std::string data,
                       client_->Read(info.handle, 1000, 512));
  EXPECT_EQ(data, content_.substr(1000, 512));
  ASSERT_OK(client_->Close(info.handle));
}

TEST_F(XrdTest, OpenMissingIsNotFound) {
  Result<OpenInfo> result = client_->Open("/absent");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(XrdTest, ReadClampedAtEof) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  ASSERT_OK_AND_ASSIGN(
      std::string data,
      client_->Read(info.handle, content_.size() - 10, 1000));
  EXPECT_EQ(data, content_.substr(content_.size() - 10));
  ASSERT_OK_AND_ASSIGN(std::string empty,
                       client_->Read(info.handle, content_.size() + 5, 10));
  EXPECT_TRUE(empty.empty());
}

TEST_F(XrdTest, BadHandleRejected) {
  EXPECT_FALSE(client_->Read(9999, 0, 10).ok());
}

TEST_F(XrdTest, ReadVectorSingleRoundTrip) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  uint64_t before = client_->requests_sent();
  std::vector<http::ByteRange> ranges = {
      {0, 100}, {100'000, 200}, {400'000, 50}, {content_.size() - 5, 100}};
  ASSERT_OK_AND_ASSIGN(auto results, client_->ReadVector(info.handle, ranges));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], content_.substr(0, 100));
  EXPECT_EQ(results[1], content_.substr(100'000, 200));
  EXPECT_EQ(results[2], content_.substr(400'000, 50));
  EXPECT_EQ(results[3], content_.substr(content_.size() - 5));  // clamped
  // The whole vector consumed exactly one request frame.
  EXPECT_EQ(client_->requests_sent() - before, 1u);
  EXPECT_EQ(server_->stats().readv_requests.load(), 1u);
  EXPECT_EQ(server_->stats().ranges_served.load(), 4u);
}

TEST_F(XrdTest, MultiplexedAsyncReadsCompleteOutOfOrder) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  // Issue many overlapping async reads and verify all complete correctly
  // regardless of completion order.
  std::vector<std::future<Result<std::string>>> futures;
  std::vector<uint64_t> offsets;
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    uint64_t offset = rng.Below(content_.size() - 256);
    offsets.push_back(offset);
    futures.push_back(client_->ReadAsync(info.handle, offset, 256));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<std::string> data = futures[i].get();
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    EXPECT_EQ(*data, content_.substr(offsets[i], 256));
  }
}

TEST_F(XrdTest, ConcurrentThreadsShareConnection) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 20; ++i) {
        uint64_t offset = rng.Below(content_.size() - 64);
        Result<std::string> data = client_->Read(info.handle, offset, 64);
        if (!data.ok() || *data != content_.substr(offset, 64)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // One connection for all of it.
  EXPECT_EQ(server_->stats().connections_accepted.load(), 1u);
}

TEST_F(XrdTest, ServerDownFailsPendingAndFuture) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  server_->faults().SetServerDown(true);
  Result<std::string> result = client_->Read(info.handle, 0, 100);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(client_->IsAlive());
  // Subsequent calls fail fast.
  EXPECT_FALSE(client_->Read(info.handle, 0, 1).ok());
}

TEST_F(XrdTest, EmptyObjectReads) {
  store_->Put("/empty", "");
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/empty"));
  EXPECT_EQ(info.size, 0u);
  ASSERT_OK_AND_ASSIGN(std::string data, client_->Read(info.handle, 0, 10));
  EXPECT_TRUE(data.empty());
}

// -------------------------------------------------------------- readahead

class ReadAheadTest : public XrdTest {};

TEST_F(ReadAheadTest, SequentialReadMatchesContent) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  ReadAheadConfig config;
  config.chunk_bytes = 8192;
  config.window_chunks = 4;
  XrdReadAheadStream stream(client_.get(), info.handle, info.size, config);
  std::string assembled;
  while (true) {
    ASSERT_OK_AND_ASSIGN(std::string chunk, stream.Read(3000));
    if (chunk.empty()) break;
    assembled += chunk;
  }
  EXPECT_EQ(assembled, content_);
}

TEST_F(ReadAheadTest, WindowKeepsMultipleRequestsInFlight) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  ReadAheadConfig config;
  config.chunk_bytes = 4096;
  config.window_chunks = 8;
  XrdReadAheadStream stream(client_.get(), info.handle, info.size, config);
  ASSERT_OK_AND_ASSIGN(std::string first, stream.Read(100));
  EXPECT_EQ(first, content_.substr(0, 100));
  // After the first read, the window should have prefetched well beyond
  // the consumed 100 bytes: at least window worth of read requests sent.
  EXPECT_GE(client_->requests_sent(), 8u);
}

TEST_F(ReadAheadTest, SeekDiscardsWindowButStaysCorrect) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  ReadAheadConfig config;
  config.chunk_bytes = 8192;
  config.window_chunks = 4;
  XrdReadAheadStream stream(client_.get(), info.handle, info.size, config);
  ASSERT_OK_AND_ASSIGN(std::string a, stream.Read(500));
  stream.Seek(300'000);
  ASSERT_OK_AND_ASSIGN(std::string b, stream.Read(500));
  stream.Seek(10);
  ASSERT_OK_AND_ASSIGN(std::string c, stream.Read(500));
  EXPECT_EQ(a, content_.substr(0, 500));
  EXPECT_EQ(b, content_.substr(300'000, 500));
  EXPECT_EQ(c, content_.substr(10, 500));
}

TEST_F(ReadAheadTest, ZeroWindowIsSynchronous) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  ReadAheadConfig config;
  config.chunk_bytes = 65536;
  config.window_chunks = 0;
  XrdReadAheadStream stream(client_.get(), info.handle, info.size, config);
  ASSERT_OK_AND_ASSIGN(std::string data, stream.Read(1000));
  EXPECT_EQ(data, content_.substr(0, 1000));
}

TEST_F(ReadAheadTest, ReadAcrossChunkBoundaries) {
  ASSERT_OK_AND_ASSIGN(OpenInfo info, client_->Open("/data.bin"));
  ReadAheadConfig config;
  config.chunk_bytes = 1000;  // force many boundaries
  config.window_chunks = 2;
  XrdReadAheadStream stream(client_.get(), info.handle, info.size, config);
  ASSERT_OK_AND_ASSIGN(std::string data, stream.Read(9990));
  EXPECT_EQ(data, content_.substr(0, 9990));
}

}  // namespace
}  // namespace xrootd
}  // namespace davix
