#include "netsim/fault_injector.h"
#include "netsim/link_profile.h"
#include "netsim/shaper.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace netsim {
namespace {

TEST(LinkProfileTest, PresetsAreOrderedByRtt) {
  EXPECT_EQ(LinkProfile::Loopback().rtt_micros, 0);
  EXPECT_LT(LinkProfile::Lan().rtt_micros, LinkProfile::PanEuropean().rtt_micros);
  EXPECT_LT(LinkProfile::PanEuropean().rtt_micros,
            LinkProfile::Wan().rtt_micros);
  EXPECT_TRUE(LinkProfile::Loopback().IsNullLink());
  EXPECT_FALSE(LinkProfile::Lan().IsNullLink());
}

TEST(LinkProfileTest, SteadyStateThroughputWindowLimited) {
  LinkProfile wan = LinkProfile::Wan();
  // 1 MiB window / 96 ms => ~11 MB/s, far below the 125 MB/s link rate.
  int64_t tput = wan.SteadyStateThroughput();
  EXPECT_LT(tput, wan.bandwidth_bytes_per_sec);
  EXPECT_GT(tput, 8'000'000);

  LinkProfile lan = LinkProfile::Lan();
  // 1 MiB / 2 ms = 512 MB/s >> link: LAN is bandwidth limited.
  EXPECT_EQ(lan.SteadyStateThroughput(), lan.bandwidth_bytes_per_sec);
}

TEST(ShaperTest, NullLinkCostsNothing) {
  ConnectionShaper shaper(LinkProfile::Loopback());
  EXPECT_EQ(shaper.OnRequestReceived(1000), 0);
  EXPECT_EQ(shaper.OnResponseSend(1 << 20), 0);
}

TEST(ShaperTest, ScheduleResponseMatchesBlockingDelays) {
  // The reactor-facing variant must charge exactly what the blocking
  // pair would, expressed as an absolute deadline against `now`.
  LinkProfile lan = LinkProfile::Lan();
  ConnectionShaper timed(lan);
  ConnectionShaper twin(lan);
  constexpr int64_t kNow = 10'000'000;
  int64_t ready_at = timed.ScheduleResponse(kNow, 512, 64 * 1024);
  int64_t expected =
      kNow + twin.OnRequestReceived(512) + twin.OnResponseSend(64 * 1024);
  EXPECT_EQ(ready_at, expected);
  EXPECT_GT(ready_at, kNow);  // LAN exchange is never free
  EXPECT_EQ(timed.exchanges(), twin.exchanges());
  EXPECT_EQ(timed.cwnd_bytes(), twin.cwnd_bytes());

  // Null link: eligible immediately, whatever the sizes.
  ConnectionShaper loopback(LinkProfile::Loopback());
  EXPECT_EQ(loopback.ScheduleResponse(kNow, 1 << 20, 1 << 20), kNow);
}

TEST(ShaperTest, FirstRequestPaysHandshake) {
  LinkProfile lan = LinkProfile::Lan();
  ConnectionShaper shaper(lan);
  int64_t first = shaper.OnRequestReceived(100);
  int64_t second = shaper.OnRequestReceived(100);
  EXPECT_EQ(first - second, lan.connect_handshake_rtts * lan.rtt_micros);
}

TEST(ShaperTest, SlowStartGrowsWindowAcrossResponses) {
  LinkProfile profile = LinkProfile::Wan();
  ConnectionShaper shaper(profile);
  int64_t initial_cwnd = shaper.cwnd_bytes();
  EXPECT_EQ(initial_cwnd, profile.init_cwnd_bytes);
  // A 1 MiB response forces several slow-start rounds.
  shaper.OnResponseSend(1 << 20);
  EXPECT_GT(shaper.cwnd_bytes(), initial_cwnd);
  EXPECT_LE(shaper.cwnd_bytes(), profile.max_cwnd_bytes);
}

TEST(ShaperTest, WarmConnectionTransfersFaster) {
  LinkProfile profile = LinkProfile::Wan();
  // Cold connection: window starts at init_cwnd.
  ConnectionShaper cold(profile);
  cold.OnRequestReceived(100);
  int64_t cold_time = cold.OnResponseSend(4 << 20);

  // Warm connection: window already grown by an earlier big response.
  ConnectionShaper warm(profile);
  warm.OnRequestReceived(100);
  warm.OnResponseSend(4 << 20);
  int64_t warm_time = warm.OnResponseSend(4 << 20);

  // Slow start makes the cold transfer strictly slower — the §2.2 cost
  // of one-connection-per-request HTTP.
  EXPECT_GT(cold_time, warm_time);
}

TEST(ShaperTest, TransferTimeMonotonicInSize) {
  LinkProfile profile = LinkProfile::PanEuropean();
  int64_t cwnd_a = profile.init_cwnd_bytes;
  int64_t cwnd_b = profile.init_cwnd_bytes;
  int64_t small = ConnectionShaper::TransferMicros(profile, 10'000, &cwnd_a);
  int64_t large = ConnectionShaper::TransferMicros(profile, 1'000'000, &cwnd_b);
  EXPECT_LT(small, large);
}

TEST(ShaperTest, TransferZeroBytesFree) {
  LinkProfile profile = LinkProfile::Wan();
  int64_t cwnd = profile.init_cwnd_bytes;
  EXPECT_EQ(ConnectionShaper::TransferMicros(profile, 0, &cwnd), 0);
}

TEST(ShaperTest, PlanExchangeSplitsLatencyAndBandwidth) {
  LinkProfile profile = LinkProfile::Wan();
  ConnectionShaper shaper(profile);
  ConnectionShaper::ExchangePlan first = shaper.PlanExchange(200, 100'000);
  // First exchange: handshake + 1 RTT of latency.
  EXPECT_EQ(first.latency_micros,
            (profile.connect_handshake_rtts + 1) * profile.rtt_micros);
  EXPECT_GT(first.bandwidth_micros, 0);
  ConnectionShaper::ExchangePlan second = shaper.PlanExchange(200, 100'000);
  EXPECT_EQ(second.latency_micros, profile.rtt_micros);
  // Warmer window: same bytes move in fewer slow-start rounds.
  EXPECT_LE(second.bandwidth_micros, first.bandwidth_micros);
}

TEST(ShaperTest, PlanMatchesLegacyInterfaceTotals) {
  LinkProfile profile = LinkProfile::PanEuropean();
  ConnectionShaper a(profile);
  ConnectionShaper b(profile);
  int64_t legacy = a.OnRequestReceived(500) + a.OnResponseSend(50'000);
  ConnectionShaper::ExchangePlan plan = b.PlanExchange(500, 50'000);
  EXPECT_EQ(legacy, plan.latency_micros + plan.bandwidth_micros);
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjectorTest, NoRulesNoFaults) {
  FaultInjector injector(1);
  EXPECT_EQ(injector.Decide("/any").action, FaultAction::kNone);
  EXPECT_EQ(injector.faults_fired(), 0);
}

TEST(FaultInjectorTest, ServerDownRefusesEverything) {
  FaultInjector injector(1);
  injector.SetServerDown(true);
  EXPECT_EQ(injector.Decide("/a").action, FaultAction::kRefuseConnection);
  EXPECT_EQ(injector.Decide("/b").action, FaultAction::kRefuseConnection);
  injector.SetServerDown(false);
  EXPECT_EQ(injector.Decide("/a").action, FaultAction::kNone);
}

TEST(FaultInjectorTest, PrefixMatchOnly) {
  FaultInjector injector(1);
  FaultRule rule;
  rule.path_prefix = "/data/";
  rule.action = FaultAction::kServerError;
  injector.AddRule(rule);
  EXPECT_EQ(injector.Decide("/data/file").action, FaultAction::kServerError);
  EXPECT_EQ(injector.Decide("/other").action, FaultAction::kNone);
}

TEST(FaultInjectorTest, MaxHitsBounded) {
  FaultInjector injector(1);
  FaultRule rule;
  rule.path_prefix = "/f";
  rule.action = FaultAction::kServerError;
  rule.max_hits = 2;
  injector.AddRule(rule);
  EXPECT_EQ(injector.Decide("/f").action, FaultAction::kServerError);
  EXPECT_EQ(injector.Decide("/f").action, FaultAction::kServerError);
  EXPECT_EQ(injector.Decide("/f").action, FaultAction::kNone);
  EXPECT_EQ(injector.faults_fired(), 2);
}

TEST(FaultInjectorTest, ProbabilisticDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector injector(seed);
    FaultRule rule;
    rule.path_prefix = "/";
    rule.action = FaultAction::kServerError;
    rule.probability = 0.5;
    injector.AddRule(rule);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.Decide("/x").action != FaultAction::kNone);
    }
    return fired;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultInjectorTest, FirstMatchingRuleWins) {
  FaultInjector injector(1);
  FaultRule first;
  first.path_prefix = "/a";
  first.action = FaultAction::kServerError;
  injector.AddRule(first);
  FaultRule second;
  second.path_prefix = "/a";
  second.action = FaultAction::kRefuseConnection;
  injector.AddRule(second);
  EXPECT_EQ(injector.Decide("/a/x").action, FaultAction::kServerError);
}

TEST(FaultInjectorTest, ClearRemovesRules) {
  FaultInjector injector(1);
  FaultRule rule;
  rule.path_prefix = "/";
  rule.action = FaultAction::kStall;
  rule.stall_micros = 5;
  injector.AddRule(rule);
  EXPECT_EQ(injector.Decide("/x").action, FaultAction::kStall);
  injector.Clear();
  EXPECT_EQ(injector.Decide("/x").action, FaultAction::kNone);
}

}  // namespace
}  // namespace netsim
}  // namespace davix
