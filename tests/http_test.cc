#include <thread>

#include "common/rng.h"
#include "http/header_map.h"
#include "http/message.h"
#include "http/multipart.h"
#include "http/parser.h"
#include "http/range.h"
#include "net/buffered_reader.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace http {
namespace {

using ::davix::testing::MakeSocketPair;
using ::davix::testing::SocketPair;

// -------------------------------------------------------------- HeaderMap

TEST(HeaderMapTest, CaseInsensitiveGet) {
  HeaderMap headers;
  headers.Add("Content-Length", "42");
  EXPECT_EQ(headers.Get("content-length"), "42");
  EXPECT_EQ(headers.Get("CONTENT-LENGTH"), "42");
  EXPECT_FALSE(headers.Get("Content-Type").has_value());
}

TEST(HeaderMapTest, AddKeepsDuplicatesSetReplaces) {
  HeaderMap headers;
  headers.Add("Via", "a");
  headers.Add("Via", "b");
  EXPECT_EQ(headers.GetAll("via").size(), 2u);
  headers.Set("Via", "c");
  EXPECT_EQ(headers.GetAll("via"), std::vector<std::string>{"c"});
}

TEST(HeaderMapTest, GetUint64) {
  HeaderMap headers;
  headers.Add("Content-Length", " 1234 ");
  EXPECT_EQ(headers.GetUint64("Content-Length"), 1234u);
  headers.Set("Content-Length", "nan");
  EXPECT_FALSE(headers.GetUint64("Content-Length").has_value());
}

TEST(HeaderMapTest, ListContains) {
  HeaderMap headers;
  headers.Add("Connection", "Keep-Alive, TE");
  EXPECT_TRUE(headers.ListContains("connection", "keep-alive"));
  EXPECT_TRUE(headers.ListContains("connection", "te"));
  EXPECT_FALSE(headers.ListContains("connection", "close"));
}

TEST(HeaderMapTest, RemoveCountsRemoved) {
  HeaderMap headers;
  headers.Add("X", "1");
  headers.Add("x", "2");
  EXPECT_EQ(headers.Remove("X"), 2u);
  EXPECT_TRUE(headers.empty());
}

// ---------------------------------------------------------------- Message

TEST(MessageTest, MethodNamesRoundTrip) {
  for (Method m : {Method::kGet, Method::kHead, Method::kPut, Method::kDelete,
                   Method::kOptions, Method::kPost, Method::kMkcol,
                   Method::kPropfind, Method::kMove}) {
    ASSERT_OK_AND_ASSIGN(Method parsed,
                         ParseMethod(std::string(MethodName(m))));
    EXPECT_EQ(parsed, m);
  }
  EXPECT_FALSE(ParseMethod("BREW").ok());
}

TEST(MessageTest, RequestSerializeAddsContentLength) {
  HttpRequest request;
  request.method = Method::kPut;
  request.target = "/obj";
  request.body = "hello";
  std::string wire = request.Serialize();
  EXPECT_NE(wire.find("PUT /obj HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\nhello"));
}

TEST(MessageTest, ResponseKeepAliveSemantics) {
  HttpResponse response;
  EXPECT_TRUE(response.KeepsConnectionAlive());  // 1.1 default
  response.headers.Set("Connection", "close");
  EXPECT_FALSE(response.KeepsConnectionAlive());
  HttpResponse old;
  old.version = "HTTP/1.0";
  EXPECT_FALSE(old.KeepsConnectionAlive());
  old.headers.Set("Connection", "keep-alive");
  EXPECT_TRUE(old.KeepsConnectionAlive());
}

TEST(MessageTest, HttpDateRoundTrip) {
  int64_t epoch = 784111777;  // Sun, 06 Nov 1994 08:49:37 GMT
  std::string formatted = FormatHttpDate(epoch);
  EXPECT_EQ(formatted, "Sun, 06 Nov 1994 08:49:37 GMT");
  ASSERT_OK_AND_ASSIGN(int64_t parsed, ParseHttpDate(formatted));
  EXPECT_EQ(parsed, epoch);
  EXPECT_FALSE(ParseHttpDate("yesterday-ish").ok());
}

TEST(MessageTest, ReasonPhrases) {
  EXPECT_EQ(ReasonPhrase(200), "OK");
  EXPECT_EQ(ReasonPhrase(206), "Partial Content");
  EXPECT_EQ(ReasonPhrase(207), "Multi-Status");
  EXPECT_EQ(ReasonPhrase(416), "Range Not Satisfiable");
  EXPECT_EQ(ReasonPhrase(777), "Unknown");
}

// ------------------------------------------------------------------ Range

TEST(RangeTest, FormatSingleAndMulti) {
  EXPECT_EQ(FormatRangeHeader({{0, 100}}), "bytes=0-99");
  EXPECT_EQ(FormatRangeHeader({{0, 10}, {50, 25}}), "bytes=0-9,50-74");
}

TEST(RangeTest, ParseBasicForms) {
  ASSERT_OK_AND_ASSIGN(auto ranges, ParseRangeHeader("bytes=0-99", 1000));
  EXPECT_EQ(ranges, (std::vector<ByteRange>{{0, 100}}));

  ASSERT_OK_AND_ASSIGN(ranges, ParseRangeHeader("bytes=900-", 1000));
  EXPECT_EQ(ranges, (std::vector<ByteRange>{{900, 100}}));

  ASSERT_OK_AND_ASSIGN(ranges, ParseRangeHeader("bytes=-100", 1000));
  EXPECT_EQ(ranges, (std::vector<ByteRange>{{900, 100}}));

  ASSERT_OK_AND_ASSIGN(ranges,
                       ParseRangeHeader("bytes=0-9, 20-29 ,40-49", 1000));
  EXPECT_EQ(ranges.size(), 3u);
}

TEST(RangeTest, ClampsToResourceSize) {
  ASSERT_OK_AND_ASSIGN(auto ranges, ParseRangeHeader("bytes=990-2000", 1000));
  EXPECT_EQ(ranges, (std::vector<ByteRange>{{990, 10}}));
  ASSERT_OK_AND_ASSIGN(ranges, ParseRangeHeader("bytes=-5000", 1000));
  EXPECT_EQ(ranges, (std::vector<ByteRange>{{0, 1000}}));
}

TEST(RangeTest, UnsatisfiableAndMalformed) {
  EXPECT_EQ(ParseRangeHeader("bytes=1000-1100", 1000).status().code(),
            StatusCode::kRangeNotSatisfiable);
  EXPECT_EQ(ParseRangeHeader("bytes=-0", 1000).status().code(),
            StatusCode::kRangeNotSatisfiable);
  EXPECT_FALSE(ParseRangeHeader("items=0-5", 1000).ok());
  EXPECT_FALSE(ParseRangeHeader("bytes=5-2", 1000).ok());
  EXPECT_FALSE(ParseRangeHeader("bytes=a-b", 1000).ok());
}

TEST(RangeTest, ContentRangeRoundTrip) {
  ByteRange r{100, 50};
  std::string formatted = FormatContentRange(r, 1234);
  EXPECT_EQ(formatted, "bytes 100-149/1234");
  ASSERT_OK_AND_ASSIGN(ContentRange parsed, ParseContentRange(formatted));
  EXPECT_EQ(parsed.range, r);
  EXPECT_EQ(parsed.total_size, 1234u);
  ASSERT_OK_AND_ASSIGN(parsed, ParseContentRange("bytes 0-0/*"));
  EXPECT_EQ(parsed.total_size, 0u);
  EXPECT_FALSE(ParseContentRange("bytes x/y").ok());
}

// Property: parse(format(ranges)) == ranges for in-bounds ranges.
class RangeRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeRoundTripTest, FormatParseIdentity) {
  Rng rng(GetParam());
  uint64_t size = 1000 + rng.Below(100000);
  std::vector<ByteRange> ranges;
  size_t n = 1 + rng.Below(20);
  for (size_t i = 0; i < n; ++i) {
    uint64_t offset = rng.Below(size);
    uint64_t length = 1 + rng.Below(size - offset);
    ranges.push_back(ByteRange{offset, length});
  }
  ASSERT_OK_AND_ASSIGN(auto parsed,
                       ParseRangeHeader(FormatRangeHeader(ranges), size));
  EXPECT_EQ(parsed, ranges);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeRoundTripTest,
                         ::testing::Range<uint64_t>(1, 33));

// -------------------------------------------------------------- Multipart

TEST(MultipartTest, BoundaryExtraction) {
  ASSERT_OK_AND_ASSIGN(
      std::string boundary,
      ExtractBoundary("multipart/byteranges; boundary=abc123"));
  EXPECT_EQ(boundary, "abc123");
  ASSERT_OK_AND_ASSIGN(
      boundary, ExtractBoundary("multipart/byteranges; boundary=\"q q\""));
  EXPECT_EQ(boundary, "q q");
  EXPECT_FALSE(ExtractBoundary("multipart/byteranges").ok());
  EXPECT_FALSE(ExtractBoundary("multipart/byteranges; boundary=").ok());
}

TEST(MultipartTest, GeneratedBoundaryAvoidsPayload) {
  std::vector<BytesPart> parts(1);
  parts[0].range = {0, 30};
  parts[0].total_size = 100;
  parts[0].data = "davixpart" + std::to_string((7 * 1000003) & 0xFFFFFF);
  parts[0].data.resize(30, 'x');
  std::string boundary = GenerateBoundary(parts, 7);
  EXPECT_EQ(parts[0].data.find(boundary), std::string::npos);
}

TEST(MultipartTest, RejectsMalformedBodies) {
  EXPECT_FALSE(ParseMultipartBody("garbage", "b").ok());
  EXPECT_FALSE(ParseMultipartBody("--b\r\nno colon line\r\n\r\n", "b").ok());
  // Part without Content-Range.
  EXPECT_FALSE(
      ParseMultipartBody("--b\r\nContent-Type: text/plain\r\n\r\nxx\r\n--b--\r\n",
                         "b")
          .ok());
  // Truncated part body.
  EXPECT_FALSE(
      ParseMultipartBody(
          "--b\r\nContent-Range: bytes 0-9/100\r\n\r\nshort", "b")
          .ok());
}

TEST(MultipartTest, EmptyPartsListYieldsClosingOnly) {
  std::string body = BuildMultipartBody({}, "b");
  ASSERT_OK_AND_ASSIGN(auto parts, ParseMultipartBody(body, "b"));
  EXPECT_TRUE(parts.empty());
}

TEST(MultipartTest, ViewsAliasTheBodyWithoutCopying) {
  // The zero-copy contract of ParseMultipartViews: every part's data is
  // a view INTO the body buffer, not a copy of it.
  std::vector<BytesPart> parts;
  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    BytesPart part;
    part.range = {uint64_t(i) * 1000, 100};
    part.total_size = 10'000;
    part.data = rng.Bytes(100);
    parts.push_back(std::move(part));
  }
  std::string boundary = GenerateBoundary(parts, 5);
  std::string body = BuildMultipartBody(parts, boundary);

  ASSERT_OK_AND_ASSIGN(auto views, ParseMultipartViews(body, boundary));
  ASSERT_EQ(views.size(), parts.size());
  const char* begin = body.data();
  const char* end = body.data() + body.size();
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i].range, parts[i].range);
    EXPECT_EQ(views[i].total_size, parts[i].total_size);
    EXPECT_EQ(views[i].data, parts[i].data);
    // No per-part payload copy: the view points inside `body`.
    EXPECT_GE(views[i].data.data(), begin);
    EXPECT_LE(views[i].data.data() + views[i].data.size(), end);
  }
}

// Property: build→parse is identity, with binary payloads.
class MultipartRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultipartRoundTripTest, BuildParseIdentity) {
  Rng rng(GetParam());
  uint64_t total = 10'000;
  std::vector<BytesPart> parts;
  size_t n = 1 + rng.Below(8);
  for (size_t i = 0; i < n; ++i) {
    BytesPart part;
    part.range.offset = rng.Below(total - 100);
    part.range.length = 1 + rng.Below(99);
    part.total_size = total;
    part.data = rng.Bytes(part.range.length);  // arbitrary binary bytes
    parts.push_back(std::move(part));
  }
  std::string boundary = GenerateBoundary(parts, GetParam());
  std::string body = BuildMultipartBody(parts, boundary);
  ASSERT_OK_AND_ASSIGN(auto parsed, ParseMultipartBody(body, boundary));
  EXPECT_EQ(parsed, parts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultipartRoundTripTest,
                         ::testing::Range<uint64_t>(1, 33));

// ----------------------------------------------------------------- Parser

/// Writes `wire` into the server side of a socket pair and parses from
/// the client side (or vice versa).
class ParserTest : public ::testing::Test {
 protected:
  void FeedToClient(const std::string& wire) {
    pair_ = MakeSocketPair();
    ASSERT_OK(pair_.server.WriteAll(wire));
    pair_.server.ShutdownWrite();
    reader_ = std::make_unique<net::BufferedReader>(&pair_.client, 1'000'000);
  }

  SocketPair pair_;
  std::unique_ptr<net::BufferedReader> reader_;
};

TEST_F(ParserTest, ParsesRequestHeadAndBody) {
  FeedToClient(
      "PUT /x%20y?q=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody");
  ASSERT_OK_AND_ASSIGN(HttpRequest request,
                       MessageReader::ReadRequestHead(reader_.get()));
  EXPECT_EQ(request.method, Method::kPut);
  EXPECT_EQ(request.target, "/x%20y?q=1");
  EXPECT_EQ(request.headers.Get("host"), "h");
  ASSERT_OK(MessageReader::ReadRequestBody(reader_.get(), &request));
  EXPECT_EQ(request.body, "body");
}

TEST_F(ParserTest, ParsesResponseWithContentLength) {
  FeedToClient("HTTP/1.1 206 Partial Content\r\nContent-Length: 3\r\n\r\nabc");
  ASSERT_OK_AND_ASSIGN(HttpResponse response,
                       MessageReader::ReadResponseHead(reader_.get()));
  EXPECT_EQ(response.status_code, 206);
  EXPECT_EQ(response.reason, "Partial Content");
  ASSERT_OK(MessageReader::ReadResponseBody(reader_.get(), false, &response));
  EXPECT_EQ(response.body, "abc");
}

TEST_F(ParserTest, HeadResponseHasNoBody) {
  FeedToClient("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n");
  ASSERT_OK_AND_ASSIGN(HttpResponse response,
                       MessageReader::ReadResponseHead(reader_.get()));
  ASSERT_OK(MessageReader::ReadResponseBody(reader_.get(), true, &response));
  EXPECT_TRUE(response.body.empty());
}

TEST_F(ParserTest, NoContentStatusesHaveNoBody) {
  FeedToClient("HTTP/1.1 204 No Content\r\n\r\n");
  ASSERT_OK_AND_ASSIGN(HttpResponse response,
                       MessageReader::ReadResponseHead(reader_.get()));
  ASSERT_OK(MessageReader::ReadResponseBody(reader_.get(), false, &response));
  EXPECT_TRUE(response.body.empty());
}

TEST_F(ParserTest, ChunkedBodyDecoding) {
  FeedToClient(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n");
  ASSERT_OK_AND_ASSIGN(HttpResponse response,
                       MessageReader::ReadResponseHead(reader_.get()));
  ASSERT_OK(MessageReader::ReadResponseBody(reader_.get(), false, &response));
  EXPECT_EQ(response.body, "Wikipedia");
}

TEST_F(ParserTest, ChunkedWithExtensionAndTrailer) {
  FeedToClient(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n");
  ASSERT_OK_AND_ASSIGN(HttpResponse response,
                       MessageReader::ReadResponseHead(reader_.get()));
  ASSERT_OK(MessageReader::ReadResponseBody(reader_.get(), false, &response));
  EXPECT_EQ(response.body, "abc");
}

TEST_F(ParserTest, BodyToEofWithoutFraming) {
  FeedToClient("HTTP/1.1 200 OK\r\n\r\nstream-until-close");
  ASSERT_OK_AND_ASSIGN(HttpResponse response,
                       MessageReader::ReadResponseHead(reader_.get()));
  ASSERT_OK(MessageReader::ReadResponseBody(reader_.get(), false, &response));
  EXPECT_EQ(response.body, "stream-until-close");
}

TEST_F(ParserTest, MalformedRequestLine) {
  FeedToClient("NOT_A_REQUEST\r\n\r\n");
  EXPECT_FALSE(MessageReader::ReadRequestHead(reader_.get()).ok());
}

TEST_F(ParserTest, UnsupportedVersionRejected) {
  FeedToClient("GET / HTTP/3.0\r\n\r\n");
  EXPECT_FALSE(MessageReader::ReadRequestHead(reader_.get()).ok());
}

TEST_F(ParserTest, IdleCloseIsDistinguishable) {
  pair_ = MakeSocketPair();
  pair_.server.Close();
  reader_ = std::make_unique<net::BufferedReader>(&pair_.client, 1'000'000);
  Result<HttpRequest> request = MessageReader::ReadRequestHead(reader_.get());
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kConnectionReset);
  EXPECT_EQ(request.status().message(), "idle close");
}

TEST_F(ParserTest, TruncatedBodyIsError) {
  FeedToClient("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc");
  ASSERT_OK_AND_ASSIGN(HttpResponse response,
                       MessageReader::ReadResponseHead(reader_.get()));
  EXPECT_FALSE(
      MessageReader::ReadResponseBody(reader_.get(), false, &response).ok());
}

TEST_F(ParserTest, BadChunkSizeIsError) {
  FeedToClient(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n");
  ASSERT_OK_AND_ASSIGN(HttpResponse response,
                       MessageReader::ReadResponseHead(reader_.get()));
  EXPECT_FALSE(
      MessageReader::ReadResponseBody(reader_.get(), false, &response).ok());
}

TEST(ChunkedEncodeTest, RoundTripThroughParser) {
  Rng rng(3);
  std::string data = rng.Bytes(10'000);
  std::string encoded = ChunkedEncode(data, 777);
  // Feed through a socket and decode.
  SocketPair pair = MakeSocketPair();
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" + encoded;
  ASSERT_OK(pair.server.WriteAll(wire));
  pair.server.ShutdownWrite();
  net::BufferedReader reader(&pair.client, 1'000'000);
  ASSERT_OK_AND_ASSIGN(HttpResponse response,
                       MessageReader::ReadResponseHead(&reader));
  ASSERT_OK(MessageReader::ReadResponseBody(&reader, false, &response));
  EXPECT_EQ(response.body, data);
}

}  // namespace
}  // namespace http
}  // namespace davix
