#ifndef DAVIX_TESTS_TEST_UTIL_H_
#define DAVIX_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "httpd/dav_handler.h"
#include "httpd/object_store.h"
#include "httpd/router.h"
#include "httpd/server.h"
#include "net/tcp_socket.h"

#include "gtest/gtest.h"

namespace davix {
namespace testing {

/// gtest helpers for Status / Result.
#define ASSERT_OK(expr)                                               \
  do {                                                                \
    const ::davix::Status _assert_ok_st = (expr);                     \
    ASSERT_TRUE(_assert_ok_st.ok()) << _assert_ok_st.ToString();      \
  } while (0)

#define EXPECT_OK(expr)                                               \
  do {                                                                \
    const ::davix::Status _expect_ok_st = (expr);                     \
    EXPECT_TRUE(_expect_ok_st.ok()) << _expect_ok_st.ToString();      \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                   \
  DAVIX_ASSIGN_OR_RETURN_IMPL_TEST(                       \
      DAVIX_ASSIGN_OR_RETURN_NAME(_test_result_, __COUNTER__), lhs, expr)

#define DAVIX_ASSIGN_OR_RETURN_IMPL_TEST(tmp, lhs, expr)  \
  auto tmp = (expr);                                      \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();       \
  lhs = std::move(tmp).value();

/// A connected loopback socket pair for wire-level tests.
struct SocketPair {
  net::TcpSocket client;
  net::TcpSocket server;
};

inline SocketPair MakeSocketPair() {
  auto listener = net::TcpListener::Listen(0);
  EXPECT_TRUE(listener.ok());
  auto client = net::TcpSocket::Connect(
      net::SocketAddress::Resolve("127.0.0.1", listener->port()).value());
  EXPECT_TRUE(client.ok());
  auto server = listener->Accept(1'000'000);
  EXPECT_TRUE(server.ok());
  SocketPair pair;
  pair.client = std::move(*client);
  pair.server = std::move(*server);
  return pair;
}

/// An HTTP storage server bundle for integration tests: in-memory store,
/// WebDAV handler, router, running server.
struct TestStorageServer {
  std::shared_ptr<httpd::ObjectStore> store;
  std::shared_ptr<httpd::DavHandler> handler;
  std::shared_ptr<httpd::Router> router;
  std::unique_ptr<httpd::HttpServer> server;

  std::string UrlFor(const std::string& path) const {
    return server->BaseUrl() + path;
  }
};

inline TestStorageServer StartStorageServer(
    httpd::ServerConfig config = {}) {
  TestStorageServer bundle;
  bundle.store = std::make_shared<httpd::ObjectStore>();
  bundle.handler = std::make_shared<httpd::DavHandler>(bundle.store);
  bundle.router = std::make_shared<httpd::Router>();
  bundle.handler->Register(bundle.router.get(), "/");
  auto server = httpd::HttpServer::Start(config, bundle.router);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  bundle.server = std::move(*server);
  return bundle;
}

}  // namespace testing
}  // namespace davix

#endif  // DAVIX_TESTS_TEST_UTIL_H_
