// End-to-end interop of the framed mux transport: the same DavFile /
// HttpClient hot paths that normally ride pooled HTTP/1.1 are pointed
// at a MuxServer with RequestParams::transport = kMux, and the results
// are CRC-checked against the pooled path — bit-identical bytes over a
// bounded handful of framed connections instead of a socket per
// request (§2.2's trade-off, measured in bench_pipelining_hol).
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/context.h"
#include "core/dav_file.h"
#include "core/http_client.h"
#include "core/read_ahead_stream.h"
#include "httpd/dav_handler.h"
#include "muxhttp/mux.h"
#include "net/byte_source.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace muxhttp {
namespace {

class MuxInteropTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<httpd::ObjectStore>();
    Rng rng(4);
    content_ = rng.Bytes(700'000);
    store_->Put("/f", content_);
    handler_ = std::make_shared<httpd::DavHandler>(store_);
    router_ = std::make_shared<httpd::Router>();
    handler_->Register(router_.get(), "/");
    MuxServerConfig config;
    config.data_chunk_bytes = 16 * 1024;  // make interleaving visible
    auto server = MuxServer::Start(config, router_);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    context_ = std::make_unique<core::Context>();
    params_.metalink_mode = core::MetalinkMode::kDisabled;
    params_.transport = core::TransportKind::kMux;
  }

  core::DavFile File(const std::string& path) {
    return *core::DavFile::Make(context_.get(),
                                server_->BaseUrl() + path);
  }

  std::shared_ptr<httpd::ObjectStore> store_;
  std::string content_;
  std::shared_ptr<httpd::DavHandler> handler_;
  std::shared_ptr<httpd::Router> router_;
  std::unique_ptr<MuxServer> server_;
  std::unique_ptr<core::Context> context_;
  core::RequestParams params_;
};

TEST_F(MuxInteropTest, GetServesDavContentOverMux) {
  core::DavFile file = File("/f");
  ASSERT_OK_AND_ASSIGN(std::string body, file.Get(params_));
  EXPECT_EQ(Crc32(body), Crc32(content_));
  EXPECT_EQ(body, content_);
  // The exchange rode the mux transport, not the session pool.
  IoCounters counters = context_->SnapshotCounters();
  EXPECT_EQ(counters.connections_opened, 0u);
  EXPECT_GE(counters.mux_streams_opened, 1u);
}

TEST_F(MuxInteropTest, RangedGetWorksThroughSameHandler) {
  core::DavFile file = File("/f");
  ASSERT_OK_AND_ASSIGN(std::string data,
                       file.ReadPartial(1000, 500, params_));
  EXPECT_EQ(data, content_.substr(1000, 500));
}

TEST_F(MuxInteropTest, PutStatDeleteRoundTripOverMux) {
  core::DavFile file = File("/new.obj");
  ASSERT_OK(file.Put("uploaded-via-mux", params_));
  ASSERT_OK_AND_ASSIGN(core::FileInfo info, file.Stat(params_));
  EXPECT_EQ(info.size, 16u);
  ASSERT_OK_AND_ASSIGN(std::string body, file.Get(params_));
  EXPECT_EQ(body, "uploaded-via-mux");
  ASSERT_OK(file.Delete(params_));
  EXPECT_FALSE(file.Stat(params_).ok());
  // Every exchange multiplexed onto one TCP connection.
  EXPECT_EQ(server_->stats().connections_accepted.load(), 1u);
}

TEST_F(MuxInteropTest, ReadPartialVecMatchesPooledPathBitForBit) {
  // The same scattered vectored read over both transports, out of two
  // independent contexts; payloads must be CRC-identical while the mux
  // side keeps its socket count bounded.
  std::vector<http::ByteRange> ranges = {
      {0, 4096}, {600'000, 8192}, {123'457, 999}, {content_.size() - 10, 10}};

  core::DavFile mux_file = File("/f");
  ASSERT_OK_AND_ASSIGN(auto mux_results,
                       mux_file.ReadPartialVec(ranges, params_));

  // Pooled leg: same server cannot speak HTTP/1.1, so run it against a
  // plain httpd serving the same store.
  auto pooled = davix::testing::StartStorageServer();
  pooled.store->Put("/f", content_);
  core::Context pooled_context;
  core::RequestParams pooled_params = params_;
  pooled_params.transport = core::TransportKind::kPooled;
  core::DavFile pooled_file =
      *core::DavFile::Make(&pooled_context, pooled.UrlFor("/f"));
  ASSERT_OK_AND_ASSIGN(auto pooled_results,
                       pooled_file.ReadPartialVec(ranges, pooled_params));

  ASSERT_EQ(mux_results.size(), pooled_results.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(Crc32(mux_results[i]), Crc32(pooled_results[i]));
    EXPECT_EQ(mux_results[i],
              content_.substr(ranges[i].offset, ranges[i].length));
  }
  IoCounters mux_counters = context_->SnapshotCounters();
  EXPECT_EQ(mux_counters.connections_opened, 0u);
  EXPECT_LE(mux_counters.mux_connections_opened, 4u);
  EXPECT_EQ(mux_counters.vector_queries,
            pooled_context.SnapshotCounters().vector_queries);
}

TEST_F(MuxInteropTest, ReadAheadStreamOverMuxDeliversInOrder) {
  // The sliding-window read-ahead path: chunks are fetched as
  // concurrent range-GETs which all multiplex onto the bounded mux
  // connection set, and still reassemble to the exact object.
  auto dav = std::make_shared<core::DavFile>(File("/f"));
  core::RequestParams params = params_;
  core::ReadAheadStreamConfig config;
  config.chunk_bytes = 64 * 1024;
  config.window_chunks = 6;
  config.file_size = content_.size();
  core::ReadAheadStream stream(
      [dav, params](uint64_t offset, uint64_t length) {
        return dav->ReadPartial(offset, length, params);
      },
      &context_->dispatcher(), config);

  std::string assembled;
  uint64_t position = 0;
  while (position < content_.size()) {
    auto chunk = stream.Read(position, 50'000);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (chunk->empty()) break;
    assembled += *chunk;
    position += chunk->size();
  }
  EXPECT_EQ(Crc32(assembled), Crc32(content_));
  EXPECT_EQ(assembled, content_);
  IoCounters counters = context_->SnapshotCounters();
  // Six chunks in flight at a time, yet at most the per-host connection
  // cap (default 2) of real sockets — the point of the transport.
  EXPECT_LE(counters.mux_connections_opened, 2u);
  EXPECT_EQ(counters.connections_opened, 0u);
  EXPECT_GE(counters.mux_streams_opened, content_.size() / 64 / 1024);
}

TEST_F(MuxInteropTest, ConcurrentThreadsShareBoundedConnections) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      core::DavFile file = File("/f");
      for (int i = 0; i < 10; ++i) {
        auto body = file.ReadPartial(uint64_t(i) * 1000, 2000, params_);
        if (!body.ok() ||
            *body != content_.substr(uint64_t(i) * 1000, 2000)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(server_->stats().connections_accepted.load(), 2u);
  EXPECT_EQ(server_->stats().requests_handled.load(), 40u);
}

TEST_F(MuxInteropTest, SlowStreamDoesNotHeadOfLineBlockFastOnes) {
  router_->Handle(http::Method::kGet, "/slow",
                  [](const http::HttpRequest&, http::HttpResponse* response) {
                    SleepForMicros(300'000);
                    response->status_code = 200;
                    response->body = "slow";
                  });
  core::HttpClient client(context_.get());

  std::thread slow_thread([&] {
    auto slow = client.Execute(*Uri::Parse(server_->BaseUrl() + "/slow"),
                               http::Method::kGet, params_);
    EXPECT_TRUE(slow.ok()) << slow.status().ToString();
    if (slow.ok()) {
      EXPECT_EQ(slow->response.body, "slow");
    }
  });
  SleepForMicros(30'000);  // let /slow occupy its stream first

  Stopwatch stopwatch;
  core::DavFile file = File("/f");
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string data,
                         file.ReadPartial(0, 1000, params_));
    EXPECT_EQ(data, content_.substr(0, 1000));
  }
  double fast_done = stopwatch.ElapsedSeconds();
  slow_thread.join();
  EXPECT_LT(fast_done, 0.25);  // finished while /slow was still pending
}

TEST_F(MuxInteropTest, RefusedStreamsAreRetriedToCompletion) {
  // Server allows two concurrent streams per connection; the client is
  // told to pack eight onto one connection, so overflow streams get RST
  // kRefusedStream — a retryable failure the client absorbs.
  MuxServerConfig config;
  config.max_streams_per_connection = 2;
  auto tight_server = MuxServer::Start(config, router_);
  ASSERT_TRUE(tight_server.ok());
  router_->Handle(http::Method::kGet, "/pause",
                  [](const http::HttpRequest&, http::HttpResponse* response) {
                    SleepForMicros(150'000);
                    response->status_code = 200;
                    response->body = "paused";
                  });
  core::RequestParams params = params_;
  params.mux_max_connections_per_host = 1;
  params.mux_max_streams_per_connection = 8;
  // Overflow streams are refused while the two admitted ones sleep the
  // full 150 ms, so give retries room to outlast that window — and keep
  // the breaker out of it: every refusal is a breaker failure for the
  // host, and a run of them must not convert into fast-fails.
  params.max_retries = 8;
  params.breaker_failure_threshold = -1;
  core::HttpClient client(context_.get());
  Uri url = *Uri::Parse((*tight_server)->BaseUrl() + "/pause");

  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      auto result = client.Execute(url, http::Method::kGet, params);
      if (result.ok() && result->response.status_code == 200) {
        ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), 4);
  EXPECT_GE((*tight_server)->stats().streams_refused.load(), 1u);
}

TEST_F(MuxInteropTest, MalformedRequestHeadGetsStreamReset) {
  // Hand-roll a HEADERS frame whose payload is not an HTTP head: the
  // server must RST that stream (protocol error) and keep the
  // connection alive for the next, well-formed stream.
  net::TcpSocket raw =
      std::move(net::TcpSocket::Connect(
                    *net::SocketAddress::Resolve("127.0.0.1",
                                                 server_->port())))
          .value();
  ASSERT_OK(raw.WriteAll(SerializeMuxFrame(9, MuxFrameType::kHeaders,
                                           kMuxFlagEndStream,
                                           "NOT HTTP AT ALL")));
  net::BufferedReader reader(&raw, 2'000'000);
  ASSERT_OK_AND_ASSIGN(MuxFrame frame, ReadMuxFrame(&reader));
  EXPECT_EQ(frame.stream_id, 9u);
  EXPECT_EQ(frame.type, MuxFrameType::kRst);
  ASSERT_OK_AND_ASSIGN(MuxRstInfo rst, ParseMuxRstPayload(frame.payload));
  EXPECT_EQ(rst.code, MuxRstCode::kProtocolError);

  // Connection still usable: a valid request on a fresh stream works.
  http::HttpRequest request;
  request.method = http::Method::kGet;
  request.target = "/f";
  request.headers.Set("Host", "mux");
  for (MuxFrame& f :
       FrameMessage(11, request.SerializeHead(0), "")) {
    ASSERT_OK(raw.WriteAll(SerializeMuxFrame(f)));
  }
  MuxStreamAssembler assembler(MuxStreamAssembler::Mode::kResponse);
  assembler.ExpectStream(11, false);
  while (true) {
    ASSERT_OK_AND_ASSIGN(MuxFrame next, ReadMuxFrame(&reader));
    ASSERT_OK_AND_ASSIGN(auto event, assembler.OnFrame(std::move(next)));
    if (!event) continue;
    ASSERT_EQ(event->stream_id, 11u);
    ASSERT_TRUE(event->response.has_value());
    EXPECT_EQ(event->response->status_code, 200);
    EXPECT_EQ(event->response->body, content_);
    break;
  }
  EXPECT_EQ(server_->stats().streams_reset.load(), 1u);
}

TEST_F(MuxInteropTest, ServerStopFailsPendingCleanly) {
  router_->Handle(http::Method::kGet, "/hang",
                  [](const http::HttpRequest&, http::HttpResponse* response) {
                    SleepForMicros(100'000);
                    response->status_code = 200;
                  });
  core::RequestParams params = params_;
  params.max_retries = 0;
  core::HttpClient client(context_.get());
  Uri url = *Uri::Parse(server_->BaseUrl() + "/hang");
  std::thread pending([&] {
    auto result = client.Execute(url, http::Method::kGet, params);
    // Either it squeaked through before the stop or it failed cleanly.
    if (!result.ok()) {
      EXPECT_TRUE(result.status().code() == StatusCode::kConnectionReset ||
                  result.status().code() == StatusCode::kCancelled ||
                  result.status().code() == StatusCode::kTimeout)
          << result.status().ToString();
    }
  });
  SleepForMicros(20'000);
  server_->Stop();
  pending.join();
}

}  // namespace
}  // namespace muxhttp
}  // namespace davix
