#include <future>
#include <thread>

#include "common/clock.h"
#include "common/rng.h"
#include "httpd/dav_handler.h"
#include "muxhttp/mux.h"
#include "net/byte_source.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace muxhttp {
namespace {

TEST(MuxFrameTest, RoundTripThroughStringSource) {
  std::string wire = SerializeMuxFrame(42, "payload-bytes");
  net::StringSource source(wire);
  net::BufferedReader reader(&source);
  ASSERT_OK_AND_ASSIGN(auto frame, ReadMuxFrame(&reader));
  EXPECT_EQ(frame.first, 42u);
  EXPECT_EQ(frame.second, "payload-bytes");
}

TEST(MuxFrameTest, RejectsOversizedFrame) {
  std::string wire = SerializeMuxFrame(1, "");
  wire[4] = wire[5] = wire[6] = wire[7] = static_cast<char>(0xFF);
  net::StringSource source(wire);
  net::BufferedReader reader(&source);
  EXPECT_FALSE(ReadMuxFrame(&reader).ok());
}

TEST(MuxPayloadTest, RequestResponseRoundTrip) {
  http::HttpRequest request;
  request.method = http::Method::kPut;
  request.target = "/x";
  request.body = "data";
  ASSERT_OK_AND_ASSIGN(http::HttpRequest parsed,
                       ParseRequestPayload(request.Serialize()));
  EXPECT_EQ(parsed.method, http::Method::kPut);
  EXPECT_EQ(parsed.body, "data");

  http::HttpResponse response;
  response.status_code = 206;
  response.body = "partial";
  ASSERT_OK_AND_ASSIGN(http::HttpResponse parsed_response,
                       ParseResponsePayload(response.Serialize()));
  EXPECT_EQ(parsed_response.status_code, 206);
  EXPECT_EQ(parsed_response.body, "partial");
}

class MuxServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<httpd::ObjectStore>();
    Rng rng(4);
    content_ = rng.Bytes(200'000);
    store_->Put("/f", content_);
    handler_ = std::make_shared<httpd::DavHandler>(store_);
    router_ = std::make_shared<httpd::Router>();
    handler_->Register(router_.get(), "/");
    auto server = MuxServer::Start({}, router_);
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
    auto client = MuxClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
  }

  http::HttpRequest Get(const std::string& target) {
    http::HttpRequest request;
    request.method = http::Method::kGet;
    request.target = target;
    request.headers.Set("Host", "mux");
    return request;
  }

  std::shared_ptr<httpd::ObjectStore> store_;
  std::string content_;
  std::shared_ptr<httpd::DavHandler> handler_;
  std::shared_ptr<httpd::Router> router_;
  std::unique_ptr<MuxServer> server_;
  std::unique_ptr<MuxClient> client_;
};

TEST_F(MuxServerTest, BasicGetServesDavContent) {
  ASSERT_OK_AND_ASSIGN(http::HttpResponse response,
                       client_->Execute(Get("/f")));
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, content_);
}

TEST_F(MuxServerTest, RangedGetWorksThroughSameHandler) {
  http::HttpRequest request = Get("/f");
  request.headers.Set("Range", "bytes=10-19");
  ASSERT_OK_AND_ASSIGN(http::HttpResponse response,
                       client_->Execute(request));
  EXPECT_EQ(response.status_code, 206);
  EXPECT_EQ(response.body, content_.substr(10, 10));
}

TEST_F(MuxServerTest, PutThenGetOnOneConnection) {
  http::HttpRequest put;
  put.method = http::Method::kPut;
  put.target = "/new";
  put.body = "uploaded-via-mux";
  ASSERT_OK_AND_ASSIGN(http::HttpResponse response, client_->Execute(put));
  EXPECT_EQ(response.status_code, 201);
  ASSERT_OK_AND_ASSIGN(http::HttpResponse get, client_->Execute(Get("/new")));
  EXPECT_EQ(get.body, "uploaded-via-mux");
  // All of it on one TCP connection.
  EXPECT_EQ(server_->stats().connections_accepted.load(), 1u);
}

TEST_F(MuxServerTest, ManyOutstandingStreamsCompleteOutOfOrder) {
  // A slow route plus many fast ones; the fast responses must not wait
  // for the slow stream (no head-of-line blocking).
  router_->Handle(http::Method::kGet, "/slow",
                  [](const http::HttpRequest&, http::HttpResponse* response) {
                    SleepForMicros(300'000);
                    response->status_code = 200;
                    response->body = "slow";
                  });
  Stopwatch stopwatch;
  auto slow = client_->ExecuteAsync(Get("/slow"));
  std::vector<std::future<Result<http::HttpResponse>>> fast;
  for (int i = 0; i < 8; ++i) fast.push_back(client_->ExecuteAsync(Get("/f")));
  for (auto& future : fast) {
    ASSERT_OK_AND_ASSIGN(http::HttpResponse response, future.get());
    EXPECT_EQ(response.status_code, 200);
  }
  double fast_done = stopwatch.ElapsedSeconds();
  ASSERT_OK_AND_ASSIGN(http::HttpResponse slow_response, slow.get());
  EXPECT_EQ(slow_response.body, "slow");
  EXPECT_LT(fast_done, 0.25);  // finished while /slow still pending
}

TEST_F(MuxServerTest, ConcurrentThreadsShareConnection) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        auto response = client_->Execute(Get("/f"));
        if (!response.ok() || response->status_code != 200 ||
            response->body != content_) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->stats().connections_accepted.load(), 1u);
  EXPECT_EQ(server_->stats().requests_handled.load(), 40u);
}

TEST_F(MuxServerTest, MalformedRequestPayloadGets400) {
  // Hand-roll a frame whose payload is not valid HTTP.
  net::TcpSocket raw =
      std::move(net::TcpSocket::Connect(
                    *net::SocketAddress::Resolve("127.0.0.1",
                                                 server_->port())))
          .value();
  ASSERT_OK(raw.WriteAll(SerializeMuxFrame(9, "NOT HTTP AT ALL")));
  net::BufferedReader reader(&raw, 2'000'000);
  ASSERT_OK_AND_ASSIGN(auto frame, ReadMuxFrame(&reader));
  EXPECT_EQ(frame.first, 9u);
  ASSERT_OK_AND_ASSIGN(http::HttpResponse response,
                       ParseResponsePayload(std::move(frame.second)));
  EXPECT_EQ(response.status_code, 400);
}

TEST_F(MuxServerTest, ServerStopFailsPending) {
  router_->Handle(http::Method::kGet, "/hang",
                  [](const http::HttpRequest&, http::HttpResponse* response) {
                    SleepForMicros(100'000);
                    response->status_code = 200;
                  });
  auto pending = client_->ExecuteAsync(Get("/hang"));
  server_->Stop();
  Result<http::HttpResponse> result = pending.get();
  // Either it squeaked through before the stop or it failed cleanly.
  if (!result.ok()) {
    EXPECT_TRUE(result.status().code() == StatusCode::kConnectionReset ||
                result.status().code() == StatusCode::kTimeout);
  }
}

}  // namespace
}  // namespace muxhttp
}  // namespace davix
