// Overload and graceful-degradation tests for the reactor server: every
// ServerStats overload counter must demonstrably fire, and the
// request-size limits must answer with the right status codes (431 for
// header abuse, 413 for body abuse) instead of hanging or crashing.

#include <atomic>
#include <string>

#include "common/clock.h"
#include "core/context.h"
#include "core/http_client.h"
#include "net/buffered_reader.h"
#include "net/socket_address.h"
#include "net/tcp_socket.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

using ::davix::testing::StartStorageServer;
using ::davix::testing::TestStorageServer;

/// Polls `counter` until it reaches `at_least` or ~5s pass.
bool WaitForCounter(const std::atomic<uint64_t>& counter, uint64_t at_least) {
  int64_t deadline = MonotonicMicros() + 5'000'000;
  while (MonotonicMicros() < deadline) {
    if (counter.load(std::memory_order_relaxed) >= at_least) return true;
    SleepForMicros(5'000);
  }
  return counter.load(std::memory_order_relaxed) >= at_least;
}

net::TcpSocket ConnectTo(const TestStorageServer& server) {
  auto address =
      net::SocketAddress::Resolve("127.0.0.1", server.server->port());
  auto socket = net::TcpSocket::Connect(*address);
  EXPECT_TRUE(socket.ok());
  return std::move(*socket);
}

/// Sends raw bytes, half-closes, returns everything the server answers.
std::string RawExchange(const TestStorageServer& server,
                        const std::string& bytes) {
  net::TcpSocket socket = ConnectTo(server);
  EXPECT_OK(socket.WriteAll(bytes));
  socket.ShutdownWrite();
  std::string response;
  net::BufferedReader reader(&socket, 2'000'000);
  (void)reader.ReadToEof(&response);
  return response;
}

void ExpectHealthy(const TestStorageServer& server, const std::string& path) {
  core::Context context;
  core::HttpClient client(&context);
  core::RequestParams params;
  auto exchange = client.Execute(*Uri::Parse(server.UrlFor(path)),
                                 http::Method::kGet, params);
  ASSERT_TRUE(exchange.ok()) << exchange.status().ToString();
  EXPECT_EQ(exchange->response.status_code, 200);
}

TEST(ServerOverloadTest, RequestLineTooLargeGets431) {
  httpd::ServerConfig config;
  config.max_request_line_bytes = 1024;
  TestStorageServer server = StartStorageServer(config);
  server.store->Put("/f", "payload");

  // A request line that never terminates within budget.
  std::string response =
      RawExchange(server, "GET /" + std::string(4096, 'a'));
  EXPECT_NE(response.find("431"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  ExpectHealthy(server, "/f");
}

TEST(ServerOverloadTest, HeaderBlockTooLargeGets431) {
  httpd::ServerConfig config;
  config.max_header_bytes = 2048;
  TestStorageServer server = StartStorageServer(config);
  server.store->Put("/f", "payload");

  std::string request = "GET /f HTTP/1.1\r\nHost: x\r\nX-Pad: " +
                        std::string(8192, 'b') + "\r\n\r\n";
  std::string response = RawExchange(server, request);
  EXPECT_NE(response.find("431"), std::string::npos) << response;
  ExpectHealthy(server, "/f");
}

TEST(ServerOverloadTest, OversizedContentLengthGets413) {
  httpd::ServerConfig config;
  config.max_body_bytes = 1024;
  TestStorageServer server = StartStorageServer(config);
  server.store->Put("/f", "payload");

  // The declaration alone is enough: no body bytes are ever sent.
  std::string response = RawExchange(
      server, "PUT /f HTTP/1.1\r\nHost: x\r\nContent-Length: 4096\r\n\r\n");
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  ExpectHealthy(server, "/f");
}

TEST(ServerOverloadTest, ChunkAbusiveBodyGets413) {
  httpd::ServerConfig config;
  config.max_body_bytes = 1024;
  TestStorageServer server = StartStorageServer(config);
  server.store->Put("/f", "payload");

  // A well-formed chunked body whose decoded size busts the limit.
  std::string chunk_data(8192, 'c');
  std::string request =
      "PUT /f HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n" +
      std::string("2000\r\n") + chunk_data + "\r\n0\r\n\r\n";
  std::string response = RawExchange(server, request);
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  ExpectHealthy(server, "/f");
}

TEST(ServerOverloadTest, ConnectionCapShedsWithRetryAfter) {
  httpd::ServerConfig config;
  config.max_connections = 2;
  TestStorageServer server = StartStorageServer(config);
  server.store->Put("/f", "payload");

  // Two admitted connections park at the cap...
  net::TcpSocket first = ConnectTo(server);
  net::TcpSocket second = ConnectTo(server);
  ASSERT_TRUE(WaitForCounter(server.server->stats().connections_accepted, 2));

  // ...so the third is shed at accept with a canned 503 + Retry-After.
  std::string response = RawExchange(server, "");
  EXPECT_NE(response.find("503"), std::string::npos) << response;
  EXPECT_NE(response.find("Retry-After:"), std::string::npos) << response;
  EXPECT_GE(server.server->stats().connections_shed.load(), 1u);

  // Releasing the parked connections restores service.
  first.Close();
  second.Close();
  int64_t deadline = MonotonicMicros() + 5'000'000;
  while (server.server->stats().connections_active.load() > 0 &&
         MonotonicMicros() < deadline) {
    SleepForMicros(5'000);
  }
  EXPECT_EQ(server.server->stats().connections_active.load(), 0u);
  ExpectHealthy(server, "/f");
}

TEST(ServerOverloadTest, AdmissionControlShedsWithRetryAfter) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "payload");

  server.server->SetMaxDispatchBacklog(0);  // shed everything
  std::string response =
      RawExchange(server, "GET /f HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("503"), std::string::npos) << response;
  EXPECT_NE(response.find("Retry-After:"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_GE(server.server->stats().requests_shed.load(), 1u);

  server.server->SetMaxDispatchBacklog(256);  // recovery
  ExpectHealthy(server, "/f");
  EXPECT_GE(server.server->stats().requests_handled.load(), 1u);
}

TEST(ServerOverloadTest, HeaderTimeoutCounterFires) {
  httpd::ServerConfig config;
  config.header_timeout_micros = 150'000;
  TestStorageServer server = StartStorageServer(config);
  server.store->Put("/f", "payload");

  // Slowloris: a header block that never completes.
  net::TcpSocket socket = ConnectTo(server);
  ASSERT_OK(socket.WriteAll("GET /f HTTP/1.1\r\nHost: x\r\nX-Slow: "));
  EXPECT_TRUE(WaitForCounter(server.server->stats().header_timeouts, 1));
  ExpectHealthy(server, "/f");
}

TEST(ServerOverloadTest, WriteStallAbortCounterFires) {
  httpd::ServerConfig config;
  config.write_stall_timeout_micros = 200'000;
  TestStorageServer server = StartStorageServer(config);
  // Big enough that loopback socket buffers cannot swallow it whole.
  server.store->Put("/big", std::string(32 * 1024 * 1024, 'x'));
  server.store->Put("/f", "payload");

  // Request the object and then never read a byte of the response.
  net::TcpSocket socket = ConnectTo(server);
  ASSERT_OK(socket.WriteAll("GET /big HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_TRUE(WaitForCounter(server.server->stats().write_stall_aborts, 1));
  ExpectHealthy(server, "/f");
}

TEST(ServerOverloadTest, DrainCompletesInFlightResponses) {
  TestStorageServer server = StartStorageServer();
  server.store->Put("/f", "payload");
  server.router->Handle(
      http::Method::kGet, "/slow",
      [](const http::HttpRequest&, http::HttpResponse* response) {
        SleepForMicros(300'000);
        response->status_code = 200;
        response->reason = "OK";
        response->body = "slow-done";
      });

  net::TcpSocket socket = ConnectTo(server);
  ASSERT_OK(socket.WriteAll("GET /slow HTTP/1.1\r\nHost: x\r\n\r\n"));
  SleepForMicros(100'000);  // let the reactor dispatch it to a worker

  // Stop() must drain: the in-flight response still arrives complete.
  server.server->Stop();
  std::string response;
  net::BufferedReader reader(&socket, 2'000'000);
  (void)reader.ReadToEof(&response);
  EXPECT_NE(response.find("200"), std::string::npos) << response;
  EXPECT_NE(response.find("slow-done"), std::string::npos) << response;

  httpd::ServerStats& stats = server.server->stats();
  EXPECT_EQ(stats.drain_completions.load(), 1u);
  EXPECT_EQ(stats.responses_completed.load(), stats.requests_handled.load());
}

}  // namespace
}  // namespace davix
