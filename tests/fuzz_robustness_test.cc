// Randomised corruption ("poor man's fuzzing", deterministic seeds):
// every parser in the stack must reject arbitrary corruption with an
// error — never crash, hang, or silently return wrong data. Each suite
// takes a valid artefact, flips/truncates/splices random bytes, and
// feeds the result to the parser.

#include "common/clock.h"
#include "common/rng.h"
#include "compress/codec.h"
#include "http/message.h"
#include "http/multipart.h"
#include "http/range.h"
#include "metalink/metalink.h"
#include "muxhttp/frame.h"
#include "net/byte_source.h"
#include "netsim/fault_injector.h"
#include "root/tree_format.h"
#include "test_util.h"
#include "xml/xml.h"

#include "gtest/gtest.h"

namespace davix {
namespace {

/// Applies one of several corruption operators to `data`.
std::string Corrupt(std::string data, Rng* rng) {
  if (data.empty()) return data;
  switch (rng->Below(4)) {
    case 0: {  // flip random bytes
      size_t flips = 1 + rng->Below(8);
      for (size_t i = 0; i < flips; ++i) {
        data[rng->Below(data.size())] ^=
            static_cast<char>(1 + rng->Below(255));
      }
      return data;
    }
    case 1:  // truncate
      return data.substr(0, rng->Below(data.size()));
    case 2: {  // splice a random block over a random position
      size_t pos = rng->Below(data.size());
      std::string garbage = rng->Bytes(1 + rng->Below(64));
      data.replace(pos, std::min(garbage.size(), data.size() - pos),
                   garbage);
      return data;
    }
    default: {  // duplicate a slice into the middle
      size_t from = rng->Below(data.size());
      size_t len = std::min<size_t>(1 + rng->Below(32), data.size() - from);
      data.insert(rng->Below(data.size()), data.substr(from, len));
      return data;
    }
  }
}

class CompressFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressFuzzTest, CorruptFramesNeverCrashOrLie) {
  Rng rng(GetParam());
  std::string original = rng.CompressibleBytes(2000 + rng.Below(4000));
  auto codec = static_cast<compress::CodecType>(1 + rng.Below(2));
  std::string frame = compress::Compress(codec, original);
  for (int round = 0; round < 20; ++round) {
    std::string corrupted = Corrupt(frame, &rng);
    Result<std::string> out = compress::Decompress(corrupted);
    // Either detected (the common case, via magic/size/crc) or — only if
    // the corruption kept the frame bit-exact semantics — identical.
    if (out.ok()) {
      EXPECT_EQ(*out, original);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressFuzzTest,
                         ::testing::Range<uint64_t>(1, 17));

class TreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeFuzzTest, CorruptIndexRegionsRejected) {
  Rng rng(GetParam());
  root::TreeSpec spec;
  spec.n_events = 300;
  spec.events_per_basket = 50;
  spec.branches = {{"a", 4}, {"b", 16}};
  std::string file = root::BuildTreeFile(spec, GetParam());
  for (int round = 0; round < 20; ++round) {
    std::string corrupted = Corrupt(file, &rng);
    // Must never crash; may legitimately still parse if the corruption
    // hit basket payloads rather than the header/index.
    Result<root::TreeIndex> index = root::ParseTreeIndex(corrupted);
    if (index.ok()) {
      // Whatever parsed must still be internally consistent.
      EXPECT_LE(index->data_begin, index->file_size);
      for (const auto& branch : index->baskets) {
        for (const root::BasketInfo& basket : branch) {
          EXPECT_LE(basket.offset + basket.stored_length, index->file_size);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeFuzzTest,
                         ::testing::Range<uint64_t>(1, 17));

// Directed record-level fuzzing of the tree header + basket index
// grammar: unlike TreeFuzzTest (whole-file corruption, most rounds land
// in basket payloads), every input here stresses the record parsers.
namespace {

root::TreeSpec SmallTreeSpec() {
  root::TreeSpec spec;
  spec.n_events = 200;
  spec.events_per_basket = 50;
  spec.branches = {{"a", 4}, {"b", 16}};
  return spec;
}

/// Overwrites `width` bytes at `pos` with a little-endian value, the
/// same encoding tree_format uses for its header fields.
void PokeField(std::string* file, size_t pos, uint64_t value, size_t width) {
  for (size_t i = 0; i < width; ++i) {
    (*file)[pos + i] = static_cast<char>(value >> (8 * i));
  }
}

}  // namespace

TEST(TreeRecordDirectedTest, EveryHeaderAndIndexTruncationErrorsCleanly) {
  std::string file = root::BuildTreeFile(SmallTreeSpec(), 1);
  uint64_t region = *root::TreeIndexRegionSize(file);
  ASSERT_GT(region, root::kTreeHeaderSize);
  // Every proper prefix of the header+index region must be a clean
  // error — records are bounds-checked, never over-read.
  for (size_t cut = 0; cut < region; ++cut) {
    EXPECT_FALSE(root::ParseTreeIndex(file.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes parsed";
    if (cut < root::kTreeHeaderSize) {
      EXPECT_FALSE(root::TreeIndexRegionSize(file.substr(0, cut)).ok());
    }
  }
  // The exact region parses — truncation detection is not over-eager.
  EXPECT_OK(root::ParseTreeIndex(file.substr(0, region)).status());
}

TEST(TreeRecordDirectedTest, OversizedDeclaredFieldsRejectedWithoutOverRead) {
  const std::string file = root::BuildTreeFile(SmallTreeSpec(), 1);
  // Header field offsets: n_events u64 @8, events_per_basket u32 @16,
  // n_branches u32 @21, file_size u64 @25, data_begin u64 @33.
  struct Mutation {
    size_t pos;
    uint64_t value;
    size_t width;
  } mutations[] = {
      {8, ~0ull, 8},          // n_events: astronomically many baskets
      {8, 1ull << 60, 8},     // n_events: capacity * 16 would overflow
      {16, 0, 4},             // events_per_basket: division by zero guard
      {21, ~0ull, 4},         // n_branches: far past the sanity cap
      {21, 4096, 4},          // n_branches: cap-compliant, table truncated
      {33, ~0ull, 8},         // data_begin: region beyond the input
      {33, 1ull << 40, 8},    // data_begin: plausible-looking but absent
  };
  for (const Mutation& mutation : mutations) {
    std::string mutated = file;
    PokeField(&mutated, mutation.pos, mutation.value, mutation.width);
    Result<root::TreeIndex> index = root::ParseTreeIndex(mutated);
    EXPECT_FALSE(index.ok()) << "field at " << mutation.pos << " = "
                             << mutation.value << " accepted";
  }
}

TEST(TreeRecordDirectedTest, WrappingBasketRecordBoundsRejected) {
  std::string file = root::BuildTreeFile(SmallTreeSpec(), 1);
  uint64_t region = *root::TreeIndexRegionSize(file);
  // First basket record sits at the end of the branch table; poke its
  // offset/stored_length with values whose sum wraps uint64 — the
  // subtraction-form bound check must still reject them.
  size_t branch_table = 0;
  for (const root::BranchSpec& branch : SmallTreeSpec().branches) {
    branch_table += 2 + branch.name.size() + 4;
  }
  size_t first_record = root::kTreeHeaderSize + branch_table;
  ASSERT_LT(first_record + 16, region);
  std::string wrapped = file;
  PokeField(&wrapped, first_record, ~0ull - 7, 8);      // offset near 2^64
  PokeField(&wrapped, first_record + 8, 64, 4);         // offset+len wraps
  EXPECT_FALSE(root::ParseTreeIndex(wrapped).ok());
  std::string outside = file;
  PokeField(&outside, first_record, file.size() + 1, 8);  // past file_size
  EXPECT_FALSE(root::ParseTreeIndex(outside).ok());
}

class TreeRecordFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeRecordFuzzTest, CorruptRecordRegionParsesCleanlyOrNotAtAll) {
  Rng rng(GetParam());
  std::string file = root::BuildTreeFile(SmallTreeSpec(), GetParam());
  uint64_t region = *root::TreeIndexRegionSize(file);
  for (int round = 0; round < 40; ++round) {
    // Corrupt only the header+index region, then offer the parser just
    // that region (plus whatever the truncation operator left) — every
    // round exercises record parsing, none is absorbed by payload bytes.
    std::string head = Corrupt(file.substr(0, region), &rng);
    Result<root::TreeIndex> index = root::ParseTreeIndex(head);
    if (!index.ok()) continue;
    // Whatever parsed must be internally consistent and re-parse to the
    // same shape (no read past the declared region, no flaky accepts).
    EXPECT_LE(index->spec.branches.size(), 4096u);
    for (const auto& branch : index->baskets) {
      for (const root::BasketInfo& basket : branch) {
        EXPECT_GE(basket.offset, index->data_begin);
        EXPECT_LE(basket.offset + basket.stored_length, index->file_size);
      }
    }
    Result<root::TreeIndex> again = root::ParseTreeIndex(head);
    ASSERT_OK(again.status());
    EXPECT_EQ(again->spec.branches.size(), index->spec.branches.size());
    EXPECT_EQ(again->data_begin, index->data_begin);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeRecordFuzzTest,
                         ::testing::Range<uint64_t>(1, 17));

class XmlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlFuzzTest, CorruptDocumentsNeverCrash) {
  Rng rng(GetParam());
  metalink::MetalinkFile file;
  file.name = "fuzz.root";
  file.size = 12345;
  for (int i = 0; i < 3; ++i) {
    metalink::Replica replica;
    replica.url = "http://host" + std::to_string(i) + "/f";
    replica.priority = i + 1;
    file.replicas.push_back(replica);
  }
  std::string document = metalink::WriteMetalink(file);
  for (int round = 0; round < 30; ++round) {
    std::string corrupted = Corrupt(document, &rng);
    // Both layers must stay memory-safe.
    Result<std::unique_ptr<xml::XmlNode>> dom = xml::ParseXml(corrupted);
    Result<metalink::MetalinkFile> parsed =
        metalink::ParseMetalink(corrupted);
    if (parsed.ok()) {
      EXPECT_FALSE(parsed->replicas.empty());
    }
    (void)dom;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest,
                         ::testing::Range<uint64_t>(1, 17));

class MultipartFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultipartFuzzTest, CorruptBodiesNeverCrash) {
  Rng rng(GetParam());
  std::vector<http::BytesPart> parts;
  for (int i = 0; i < 3; ++i) {
    http::BytesPart part;
    part.range = {static_cast<uint64_t>(i) * 1000, 100};
    part.total_size = 10'000;
    part.data = rng.Bytes(100);
    parts.push_back(std::move(part));
  }
  std::string boundary = http::GenerateBoundary(parts, GetParam());
  std::string body = http::BuildMultipartBody(parts, boundary);
  for (int round = 0; round < 30; ++round) {
    std::string corrupted = Corrupt(body, &rng);
    Result<std::vector<http::BytesPart>> parsed =
        http::ParseMultipartBody(corrupted, boundary);
    if (parsed.ok()) {
      // Any accepted part must be self-consistent.
      for (const http::BytesPart& part : *parsed) {
        EXPECT_EQ(part.data.size(), part.range.length);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultipartFuzzTest,
                         ::testing::Range<uint64_t>(1, 17));

class RangeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeFuzzTest, ArbitraryHeaderValuesNeverCrash) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    // Mix of near-valid and wild inputs.
    std::string value;
    if (rng.Chance(0.5)) {
      value = "bytes=";
      size_t n = rng.Below(5);
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) value += ',';
        value += std::to_string(rng.Below(1000));
        value += rng.Chance(0.8) ? "-" : "";
        if (rng.Chance(0.7)) value += std::to_string(rng.Below(1000));
      }
    } else {
      value = std::string(rng.Bytes(rng.Below(40)));
    }
    (void)http::ParseRangeHeader(value, 1000);
    (void)http::ParseContentRange(value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

class RetryAfterFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RetryAfterFuzzTest, ArbitraryHeaderValuesNeverCrashOrGoNegative) {
  Rng rng(GetParam());
  const int64_t now = 1'000'000'000;  // epoch seconds, fixed for the test
  for (int round = 0; round < 200; ++round) {
    // Mix of near-valid delta-seconds, near-valid HTTP-dates, and wild
    // bytes.
    std::string value;
    switch (rng.Below(3)) {
      case 0:
        value = std::to_string(rng.Below(1'000'000));
        if (rng.Chance(0.3)) value += rng.Bytes(1 + rng.Below(4));
        if (rng.Chance(0.3)) value = " " + value + "\t";
        break;
      case 1:
        value = http::FormatHttpDate(
            now + static_cast<int64_t>(rng.Below(100'000)) - 50'000);
        if (rng.Chance(0.4)) value = Corrupt(value, &rng);
        break;
      default:
        value = rng.Bytes(rng.Below(40));
    }
    Result<int64_t> seconds = http::ParseRetryAfter(value, now);
    // Whatever parses must be a usable non-negative wait.
    if (seconds.ok()) {
      EXPECT_GE(*seconds, 0) << "value: " << value;
    }
  }
  // Deterministic anchors of the two grammars.
  EXPECT_EQ(*http::ParseRetryAfter("120", now), 120);
  EXPECT_EQ(*http::ParseRetryAfter(" 7 ", now), 7);
  EXPECT_EQ(*http::ParseRetryAfter(http::FormatHttpDate(now + 90), now), 90);
  // A date in the past means "retry now", never a negative sleep.
  EXPECT_EQ(*http::ParseRetryAfter(http::FormatHttpDate(now - 90), now), 0);
  EXPECT_FALSE(http::ParseRetryAfter("", now).ok());
  EXPECT_FALSE(http::ParseRetryAfter("soon", now).ok());
  EXPECT_FALSE(http::ParseRetryAfter("-5", now).ok());
  EXPECT_FALSE(http::ParseRetryAfter("99999999999", now).ok());  // overflow
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryAfterFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

class FaultWindowFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultWindowFuzzTest, RandomWindowedRulesNeverCrashAndGateCorrectly) {
  Rng rng(GetParam());
  netsim::FaultInjector injector(GetParam());
  // A rule whose window is far in the future must never fire; a rule
  // with an open-ended window (end == 0) always may.
  netsim::FaultRule future;
  future.path_prefix = "/";
  future.action = netsim::FaultAction::kServerError;
  future.window_start_micros = 3'600'000'000;  // an hour from the epoch
  future.window_end_micros = 7'200'000'000;
  injector.AddRule(future);
  // Random junk rules: arbitrary windows, probabilities, hit caps.
  for (int i = 0; i < 10; ++i) {
    netsim::FaultRule rule;
    rule.path_prefix = rng.Chance(0.5) ? "/" : std::string(rng.Bytes(3));
    rule.action = static_cast<netsim::FaultAction>(rng.Below(8));
    rule.probability = rng.Chance(0.5) ? 1.0 : 0.3;
    rule.max_hits = rng.Chance(0.5) ? -1 : static_cast<int64_t>(rng.Below(4));
    rule.window_start_micros = static_cast<int64_t>(rng.Below(2));
    rule.window_end_micros =
        rng.Chance(0.5) ? 0 : static_cast<int64_t>(rng.Below(100));
    injector.AddRule(rule);
  }
  for (int round = 0; round < 300; ++round) {
    netsim::FaultRule fired = injector.Decide("/some/path");
    // The far-future windowed rule can never be the one that fires.
    EXPECT_LT(fired.window_start_micros, 3'600'000'000);
  }
  // Rewinding the epoch re-arms relative windows deterministically: a
  // [0, 10 s) rule fires right after a reset.
  injector.Clear();
  netsim::FaultRule burst;
  burst.path_prefix = "/";
  burst.action = netsim::FaultAction::kRetryAfter;
  burst.retry_after_seconds = 2;
  burst.window_end_micros = 10'000'000;
  injector.AddRule(burst);
  injector.ResetWindowClock();
  netsim::FaultRule fired = injector.Decide("/f");
  EXPECT_EQ(fired.action, netsim::FaultAction::kRetryAfter);
  EXPECT_EQ(fired.retry_after_seconds, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultWindowFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

class MuxFrameFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MuxFrameFuzzTest, CorruptFrameStreamsNeverCrashOrOverRead) {
  // The mux frame decoder + demux state machine, fed the server's diet:
  // a valid interleaved multi-stream request sequence with random
  // corruption applied. Every outcome must be clean — a decoded
  // message, a per-stream error, or a connection-fatal error — and the
  // decoder must never fabricate bytes or walk past the input.
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    std::string wire;
    size_t streams = 1 + rng.Below(3);
    for (size_t s = 0; s < streams; ++s) {
      http::HttpRequest request;
      request.method = rng.Chance(0.5) ? http::Method::kGet
                                       : http::Method::kPut;
      request.target = "/fuzz/" + std::to_string(s);
      request.headers.Set("Host", "fuzz");
      std::string body = rng.Bytes(rng.Below(600));
      for (muxhttp::MuxFrame& frame : muxhttp::FrameMessage(
               static_cast<uint32_t>(s + 1),
               request.SerializeHead(body.size()), body,
               64 + rng.Below(200))) {
        wire += muxhttp::SerializeMuxFrame(frame);
      }
    }
    std::string corrupted = Corrupt(wire, &rng);
    net::StringSource source(corrupted);
    net::BufferedReader reader(&source);
    muxhttp::MuxStreamAssembler assembler(
        muxhttp::MuxStreamAssembler::Mode::kRequest);
    for (int frames = 0; frames < 10'000; ++frames) {
      auto frame = muxhttp::ReadMuxFrame(&reader);
      if (!frame.ok()) break;  // truncation / garbled header: clean error
      auto event = assembler.OnFrame(std::move(*frame));
      if (!event.ok()) break;  // connection-fatal: clean teardown
      if (event->has_value() && (*event)->request.has_value()) {
        // A message that survived must be carved from the input, never
        // invented: its body cannot exceed what went in.
        EXPECT_LE((*event)->request->body.size(), corrupted.size());
      }
    }
    EXPECT_LE(reader.bytes_consumed(), corrupted.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuxFrameFuzzTest,
                         ::testing::Range<uint64_t>(1, 17));

TEST(MuxFrameDirectedTest, EveryTruncationErrorsCleanly) {
  std::string wire =
      muxhttp::SerializeMuxFrame(7, muxhttp::MuxFrameType::kData, 0,
                                 "abcdef");
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    net::StringSource source(wire.substr(0, cut));
    net::BufferedReader reader(&source);
    Result<muxhttp::MuxFrame> result = muxhttp::ReadMuxFrame(&reader);
    EXPECT_FALSE(result.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

TEST(MuxFrameDirectedTest, OversizedLengthNeverConsumesPastHeader) {
  // Header claims ~4 GiB; 100 bytes of junk follow. The decoder must
  // reject on the declared length alone, consuming exactly the header.
  std::string wire =
      muxhttp::SerializeMuxFrame(1, muxhttp::MuxFrameType::kData, 0, "");
  wire[6] = wire[7] = wire[8] = wire[9] = static_cast<char>(0xFF);
  wire += std::string(100, 'x');
  net::StringSource source(wire);
  net::BufferedReader reader(&source);
  Result<muxhttp::MuxFrame> result = muxhttp::ReadMuxFrame(&reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(reader.bytes_consumed(), muxhttp::kMuxFrameHeaderSize);
}

TEST(MuxFrameDirectedTest, DuplicateStreamIdHeadersIsConnectionFatal) {
  muxhttp::MuxStreamAssembler assembler(
      muxhttp::MuxStreamAssembler::Mode::kRequest);
  http::HttpRequest request;
  request.method = http::Method::kPut;
  request.target = "/dup";
  std::string head = request.SerializeHead(64);
  ASSERT_OK(assembler.OnFrame({5, muxhttp::MuxFrameType::kHeaders, 0, head})
                .status());
  Result<std::optional<muxhttp::MuxStreamAssembler::Event>> dup =
      assembler.OnFrame({5, muxhttp::MuxFrameType::kHeaders, 0, head});
  EXPECT_FALSE(dup.ok());
}

TEST(MuxFrameDirectedTest, UnknownTypeAndFlagBitsRejected) {
  for (uint8_t type : {uint8_t{0}, uint8_t{4}, uint8_t{0x7F}, uint8_t{0xFF}}) {
    std::string wire =
        muxhttp::SerializeMuxFrame(3, muxhttp::MuxFrameType::kData, 0, "z");
    wire[4] = static_cast<char>(type);
    net::StringSource source(wire);
    net::BufferedReader reader(&source);
    EXPECT_EQ(muxhttp::ReadMuxFrame(&reader).status().code(),
              StatusCode::kProtocolError);
  }
  for (uint8_t flags : {uint8_t{0x02}, uint8_t{0x80}, uint8_t{0xFE}}) {
    std::string wire =
        muxhttp::SerializeMuxFrame(3, muxhttp::MuxFrameType::kData, 0, "z");
    wire[5] = static_cast<char>(flags);
    net::StringSource source(wire);
    net::BufferedReader reader(&source);
    EXPECT_EQ(muxhttp::ReadMuxFrame(&reader).status().code(),
              StatusCode::kProtocolError);
  }
}

}  // namespace
}  // namespace davix
