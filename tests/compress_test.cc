#include <tuple>

#include "common/rng.h"
#include "compress/codec.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace davix {
namespace compress {
namespace {

TEST(CodecTest, NamesRoundTrip) {
  for (CodecType type : {CodecType::kNone, CodecType::kRle, CodecType::kDlz}) {
    ASSERT_OK_AND_ASSIGN(CodecType parsed,
                         ParseCodecName(std::string(CodecName(type))));
    EXPECT_EQ(parsed, type);
  }
  EXPECT_FALSE(ParseCodecName("zstd").ok());
}

TEST(CodecTest, EmptyInputRoundTrips) {
  for (CodecType type : {CodecType::kNone, CodecType::kRle, CodecType::kDlz}) {
    std::string frame = Compress(type, "");
    ASSERT_OK_AND_ASSIGN(std::string out, Decompress(frame));
    EXPECT_TRUE(out.empty());
  }
}

TEST(CodecTest, CompressesRuns) {
  std::string data(10'000, 'x');
  std::string rle = Compress(CodecType::kRle, data);
  std::string dlz = Compress(CodecType::kDlz, data);
  EXPECT_LT(rle.size(), data.size() / 10);
  EXPECT_LT(dlz.size(), data.size() / 10);
}

TEST(CodecTest, IncompressibleFallsBackToStored) {
  Rng rng(1);
  std::string data = rng.Bytes(4096);
  std::string frame = Compress(CodecType::kDlz, data);
  // Stored form: frame is exactly header + original bytes.
  EXPECT_EQ(frame.size(), kFrameHeaderSize + data.size());
  ASSERT_OK_AND_ASSIGN(std::string out, Decompress(frame));
  EXPECT_EQ(out, data);
}

TEST(CodecTest, FrameOriginalSize) {
  std::string frame = Compress(CodecType::kDlz, std::string(500, 'a'));
  ASSERT_OK_AND_ASSIGN(uint64_t size, FrameOriginalSize(frame));
  EXPECT_EQ(size, 500u);
  EXPECT_FALSE(FrameOriginalSize("xx").ok());
}

TEST(CodecTest, DetectsCorruption) {
  std::string frame = Compress(CodecType::kDlz, std::string(2000, 'q'));
  // Flip a payload byte.
  std::string corrupted = frame;
  corrupted[kFrameHeaderSize] ^= 0x5A;
  Result<std::string> out = Decompress(corrupted);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, DetectsBadMagicAndTruncation) {
  std::string frame = Compress(CodecType::kRle, "hello world");
  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_FALSE(Decompress(bad_magic).ok());
  EXPECT_FALSE(Decompress(frame.substr(0, 5)).ok());
  EXPECT_FALSE(Decompress("").ok());
}

TEST(CodecTest, DetectsBadCodecByte) {
  std::string frame = Compress(CodecType::kNone, "data");
  frame[4] = 0x7F;
  EXPECT_FALSE(Decompress(frame).ok());
}

TEST(CodecTest, DlzHandlesOverlappingMatches) {
  // "abcabcabc..." forces matches whose source overlaps the output head.
  std::string data;
  for (int i = 0; i < 1000; ++i) data += "abc";
  std::string frame = Compress(CodecType::kDlz, data);
  EXPECT_LT(frame.size(), data.size() / 4);
  ASSERT_OK_AND_ASSIGN(std::string out, Decompress(frame));
  EXPECT_EQ(out, data);
}

// Property: round trip over codecs × payload shapes × sizes.
using RoundTripParam = std::tuple<int, int, uint64_t>;

class CodecRoundTripTest : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(CodecRoundTripTest, CompressDecompressIdentity) {
  auto [codec_idx, shape, seed] = GetParam();
  CodecType type = static_cast<CodecType>(codec_idx);
  Rng rng(seed);
  size_t size = rng.Below(64 * 1024);
  std::string data;
  switch (shape) {
    case 0:
      data = rng.Bytes(size);  // incompressible
      break;
    case 1:
      data = rng.CompressibleBytes(size);  // texty with runs
      break;
    case 2:
      data.assign(size, static_cast<char>(rng.Below(256)));  // one run
      break;
    case 3: {  // sparse: mostly zeros with random spikes
      data.assign(size, '\0');
      for (size_t i = 0; i < size / 50 + 1 && size > 0; ++i) {
        data[rng.Below(size)] = static_cast<char>(rng.Below(256));
      }
      break;
    }
  }
  std::string frame = Compress(type, data);
  ASSERT_OK_AND_ASSIGN(std::string out, Decompress(frame));
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CodecRoundTripTest,
    ::testing::Combine(::testing::Values(0, 1, 2),     // codec
                       ::testing::Values(0, 1, 2, 3),  // shape
                       ::testing::Range<uint64_t>(1, 6)));

}  // namespace
}  // namespace compress
}  // namespace davix
